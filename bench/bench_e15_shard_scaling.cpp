// E15 — multi-reactor shard scaling: sessions/sec for a TransportServer
// sharded 1/2/4 ways on loopback sockets, one pump thread per shard, so
// total crypto parallelism grows with the shard count. Two workloads per
// layout: connection-local homes (stripe off — the scaling
// configuration, every frame on its shard's synchronous path) and
// striped homes (stripe on — every session fanned round-robin, pricing
// the cross-shard handoff). The interesting shape: sessions/sec grows
// monotonically with shards on a multi-core host because the per-shard
// services' crypto pools, loops and batch verifiers stop sharing
// anything; the striped column trails the local one only by the handoff
// queueing, which stays small because frames cross shards by message
// passing, never by locking session state.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "transport/client.h"
#include "transport/server.h"

using namespace shs;
using namespace shs::bench;
using namespace shs::transport;

namespace {

SessionFactory bench_factory(BenchGroup& group) {
  return [&group](BytesView payload) {
    const OpenRequest request = decode_open_request(payload);
    core::HandshakeOptions options;
    options.self_distinction = request.self_distinction;
    options.traceable = request.traceable;
    std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
    for (std::size_t i = 0; i < request.m; ++i) {
      parts.push_back(group.members[i]->handshake_party(i, request.m, options,
                                                        request.seed));
    }
    return parts;
  };
}

struct ShardResult {
  double wall_ms = 0;
  std::uint64_t handoff = 0;  // frames that crossed shards
};

/// `sessions` hosted sessions split across `clients` connections against
/// a `shards`-way server, one pump thread per shard. Wall time covers
/// connect + open + relay to the last DONE.
ShardResult run_sharded(BenchGroup& group, std::size_t shards, bool stripe,
                        std::size_t sessions, std::size_t clients,
                        std::uint32_t m, const std::string& salt) {
  ServerOptions server_options;
  server_options.num_shards = shards;
  server_options.stripe_sessions = stripe;
  service::ServiceOptions service_options;
  service_options.threads = 1;  // per shard: parallelism = shard count
  TransportServer server(server_options, service_options,
                         bench_factory(group));
  server.start();

  ShardResult result;
  result.wall_ms = time_ms([&] {
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        Client client({.port = server.port()});
        client.connect();
        const std::size_t mine = sessions / clients;
        for (std::size_t s = 0; s < mine; ++s) {
          OpenRequest request;
          request.m = m;
          request.seed = to_bytes(salt + std::to_string(c) + "-" +
                                  std::to_string(s));
          (void)client.open(request);
        }
        if (client.run().size() != mine) std::abort();  // bench invariant
      });
    }
    for (auto& w : workers) w.join();
  });
  for (std::size_t i = 0; i < shards; ++i) {
    result.handoff +=
        server.service(i).metrics().frames_handoff_in.load();
  }
  server.shutdown();
  return result;
}

void BM_ShardScaling(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  BenchGroup& group = cached_group("e15", core::GroupConfig{}, 4);
  int salt = 0;
  for (auto _ : state) {
    const ShardResult r =
        run_sharded(group, shards, /*stripe=*/false, 32, 4, 4,
                    "bm" + std::to_string(salt++) + "-");
    state.counters["sessions_per_sec"] = 1000.0 * 32 / r.wall_ms;
  }
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardScaling)
    ->Arg(1)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E15: shard scaling — hosted sessions over loopback sockets, "
              "1/2/4 reactor shards, one pump thread per shard\n");

  BenchGroup& group = cached_group("e15", core::GroupConfig{}, 4);
  (void)run_sharded(group, 2, true, 4, 2, 2, "warm-");  // prewarm

  constexpr std::size_t kSessions = 96;
  constexpr std::size_t kClients = 8;
  JsonReport report("e15");
  table_header(
      "m | shards | local sess/sec | speedup | striped sess/sec | "
      "handoff frames",
      "--+--------+----------------+---------+------------------+"
      "---------------");
  for (const std::uint32_t m : {2u, 4u}) {
    double base = 0;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
      const std::string salt = "e15-" + std::to_string(m) + "-" +
                               std::to_string(shards) + "-";
      const ShardResult local = run_sharded(group, shards, false, kSessions,
                                            kClients, m, salt + "loc-");
      const ShardResult striped = run_sharded(group, shards, true, kSessions,
                                              kClients, m, salt + "str-");
      const double local_per_sec = 1000.0 * kSessions / local.wall_ms;
      const double striped_per_sec = 1000.0 * kSessions / striped.wall_ms;
      if (shards == 1) base = local_per_sec;
      const double speedup = local_per_sec / base;
      std::printf("%u | %6zu | %14.1f | %7.2f | %16.1f | %14llu\n", m,
                  shards, local_per_sec, speedup, striped_per_sec,
                  static_cast<unsigned long long>(striped.handoff));
      report.add()
          .field("m", static_cast<double>(m))
          .field("shards", static_cast<double>(shards))
          .field("sessions", static_cast<double>(kSessions))
          .field("clients", static_cast<double>(kClients))
          .field("local_wall_ms", local.wall_ms)
          .field("sessions_per_sec", local_per_sec)
          .field("speedup_vs_one_shard", speedup)
          .field("striped_sessions_per_sec", striped_per_sec)
          .field("handoff_frames", static_cast<double>(striped.handoff));
    }
  }
  report.write();

  std::printf("\n(the monotonic sessions/sec target assumes a multi-core "
              "host — as in E12, the crypto pools dominate, and on a "
              "single-core container the shard counts time-slice one core "
              "so the speedup column flattens toward 1.0; the column that "
              "stays meaningful there is striped vs local, the price of "
              "the cross-shard handoff itself)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
