// E16 — encrypted channel throughput (EXPERIMENTS.md).
//
// Measures the record layer itself on an in-process loopback mesh: one
// sender seals, every other clique member opens, so a row's MB/s is
// end-to-end plaintext throughput through seal + (m-1) opens. Swept:
//   * clique width m in {2, 4, 8}
//   * length-hiding padding off vs pad_quantum=1024
//   * rekey-interval sensitivity (records per epoch 64 / 1024 / 2^12)
// Emits BENCH_e16.json. SHS_BENCH_E16_MB overrides the per-row volume.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "channel/endpoint.h"
#include "channel/keys.h"
#include "common/bytes.h"

namespace shs::bench {
namespace {

constexpr std::size_t kRecordBytes = 16 * 1024;

double mb_of_env() {
  const char* env = std::getenv("SHS_BENCH_E16_MB");
  return env != nullptr && *env != '\0' ? std::atof(env) : 8.0;
}

struct RowResult {
  double mb_per_s = 0;
  double rekeys = 0;
};

/// Streams `volume_mb` of plaintext from member 0 to the other m-1
/// members and times seal + all opens.
RowResult run_row(std::size_t m, std::size_t pad_quantum,
                  std::uint64_t rekey_records, double volume_mb) {
  std::vector<std::uint32_t> positions;
  for (std::size_t i = 0; i < m; ++i) {
    positions.push_back(static_cast<std::uint32_t>(i));
  }
  const channel::ChannelKeys keys(
      to_bytes("bench-e16 thirty-two byte key!!!"), 16, positions);
  channel::ChannelOptions options;
  options.pad_quantum = pad_quantum;
  options.rekey_after_records = rekey_records;
  std::vector<channel::ChannelEndpoint> members;
  for (std::size_t i = 0; i < m; ++i) {
    members.emplace_back(keys, static_cast<std::uint32_t>(i), options);
  }

  const std::size_t records =
      static_cast<std::size_t>(volume_mb * 1024 * 1024) / kRecordBytes;
  const Bytes payload(kRecordBytes, 0x5c);
  const double ms = time_ms([&] {
    for (std::size_t r = 0; r < records; ++r) {
      for (const auto& frame : members[0].send(payload)) {
        for (std::size_t i = 1; i < m; ++i) {
          const channel::RecordResult res = members[i].open(frame);
          if (res.verdict == channel::RecordVerdict::kRejected) {
            std::fprintf(stderr, "bench_e16: record rejected (%s)\n",
                         channel::to_string(res.reason));
            std::exit(1);
          }
        }
      }
    }
  });
  RowResult row;
  const double total_mb =
      static_cast<double>(records * kRecordBytes) / (1024.0 * 1024.0);
  row.mb_per_s = total_mb / (ms / 1000.0);
  row.rekeys = static_cast<double>(members[0].stats().rekeys_sent);
  return row;
}

}  // namespace
}  // namespace shs::bench

int main() {
  using namespace shs::bench;
  const double volume_mb = mb_of_env();
  JsonReport report("e16");

  table_header("E16: encrypted channel throughput (per-clique, sender 0)",
               "m    pad     rekey_every   MB/s      rekeys");
  for (const std::size_t m : {2u, 4u, 8u}) {
    for (const std::size_t pad : {0u, 1024u}) {
      for (const std::uint64_t rekey_every :
           {std::uint64_t{64}, std::uint64_t{1024}, std::uint64_t{1} << 12}) {
        const RowResult row = run_row(m, pad, rekey_every, volume_mb);
        std::printf("%-4zu %-7zu %-13llu %-9.1f %.0f\n", m, pad,
                    static_cast<unsigned long long>(rekey_every),
                    row.mb_per_s, row.rekeys);
        report.add()
            .field("m", static_cast<double>(m))
            .field("pad_quantum", static_cast<double>(pad))
            .field("rekey_after_records", static_cast<double>(rekey_every))
            .field("mb_per_s", row.mb_per_s)
            .field("rekeys", row.rekeys);
      }
    }
  }
  return 0;
}
