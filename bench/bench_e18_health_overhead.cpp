// E18 — health-plane overhead: sessions/sec for E11's pooled
// configuration (N concurrent hosted sessions, m = 4, loopback wire,
// 4 pump threads) with the health plane off vs. attached (SloTracker +
// HealthMonitor wired through the service and its batch verifier), plus
// the scrape-side cost of summarizing the SLO windows.
//
// The acceptance bar: "health" must stay within 5% sessions/sec of
// "off". The hot-path cost is one seqlock sample per completed
// handshake (two release stores + two plain stores), a relaxed
// heartbeat store per flush, and a pending flag flip per enqueue
// transition — all buried under the round's modexps. The quantile sort
// happens at scrape time, priced separately here.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "obs/health.h"
#include "service/clock.h"
#include "service/service.h"

using namespace shs;
using namespace shs::bench;

namespace {

constexpr std::size_t kM = 4;
constexpr std::size_t kSessions = 32;
constexpr std::size_t kThreads = 4;

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    BenchGroup& group, const std::string& salt) {
  core::HandshakeOptions options;
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < kM; ++i) {
    parts.push_back(
        group.members[i]->handshake_party(i, kM, options, to_bytes(salt)));
  }
  return parts;
}

/// E11's run_service with (optionally) the health plane attached;
/// returns wall milliseconds of open + pump (construction excluded).
double run_mode(BenchGroup& group, bool health_on, const std::string& salt) {
  std::vector<std::vector<std::unique_ptr<core::HandshakeParticipant>>> all;
  all.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    all.push_back(make_parts(group, salt + std::to_string(s)));
  }

  static service::SteadyClock steady;
  obs::SloTracker slo({.num_shards = 1});
  obs::HealthMonitor monitor({.num_shards = 1, .clock = &steady});

  service::ServiceOptions options;
  options.threads = kThreads;
  if (health_on) {
    options.slo = &slo;
    options.health = &monitor;
    options.slo_shard = 0;
  }
  service::RendezvousService svc(options);
  const double ms = time_ms([&] {
    for (auto& parts : all) (void)svc.open_session(std::move(parts));
    svc.pump();
    if (svc.active_sessions() != 0) std::abort();  // bench invariant
  });
  if (health_on &&
      slo.summarize(0, obs::SloDimension::kHandshake).count != kSessions) {
    std::abort();  // every completed handshake must have landed a sample
  }
  return ms;
}

void BM_HealthOverhead(benchmark::State& state) {
  const bool health_on = state.range(0) != 0;
  BenchGroup& group = cached_group("e18", core::GroupConfig{}, kM);
  int salt = 0;
  for (auto _ : state) {
    const double ms =
        run_mode(group, health_on, "bm" + std::to_string(salt++) + "-");
    state.counters["sessions_per_sec"] =
        1000.0 * static_cast<double>(kSessions) / ms;
  }
  state.SetLabel(health_on ? "health" : "off");
}
BENCHMARK(BM_HealthOverhead)
    ->DenseRange(0, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Scrape-side cost: one fill_snapshot over a full 512-sample window per
/// (shard, dim) — the O(window log window) sort the hot path never pays.
void BM_SloScrape(benchmark::State& state) {
  obs::SloTracker slo({.num_shards = 4});
  for (std::size_t shard = 0; shard < 4; ++shard) {
    for (std::size_t d = 0; d < obs::kSloDimensions; ++d) {
      for (std::uint64_t i = 0; i < 600; ++i) {
        slo.record(shard, static_cast<obs::SloDimension>(d), i * 7 % 5000,
                   i + 1);
      }
    }
  }
  for (auto _ : state) {
    obs::MetricsSnapshot snap;
    slo.fill_snapshot(&snap);
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_SloScrape)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E18: health-plane overhead — E11 pooled configuration "
              "(N=%zu hosted sessions, m=%zu, t=%zu) with the SLO tracker "
              "+ stall watchdog off vs. attached\n",
              kSessions, kM, kThreads);

  BenchGroup& group = cached_group("e18", core::GroupConfig{}, kM);
  (void)run_mode(group, false, "warm-");  // prewarm the cached group

  JsonReport report("e18");
  table_header(
      "mode   | sessions | wall ms | sessions/sec | vs off",
      "-------+----------+---------+--------------+-------");
  // Median of three runs per mode: a single 32-session pass is short
  // enough that scheduler noise would otherwise dwarf a 5% budget.
  double off_per_sec = 0;
  for (const bool health_on : {false, true}) {
    double runs[3];
    for (int r = 0; r < 3; ++r) {
      runs[r] = run_mode(group, health_on,
                         std::string(health_on ? "on" : "off") +
                             std::to_string(r) + "-");
    }
    std::sort(std::begin(runs), std::end(runs));
    const double ms = runs[1];
    const double per_sec = 1000.0 * static_cast<double>(kSessions) / ms;
    if (off_per_sec == 0) off_per_sec = per_sec;
    const double delta_pct = 100.0 * (off_per_sec - per_sec) / off_per_sec;
    std::printf("%-6s | %8zu | %7.1f | %12.1f | %+5.1f%%\n",
                health_on ? "health" : "off", kSessions, ms, per_sec,
                delta_pct);
    report.add()
        .field("mode", health_on ? "health" : "off")
        .field("sessions", static_cast<double>(kSessions))
        .field("pump_threads", static_cast<double>(kThreads))
        .field("wall_ms", ms)
        .field("sessions_per_sec", per_sec)
        .field("overhead_pct", delta_pct);
  }
  report.write();

  std::printf("\n(acceptance: the \"health\" row must stay within 5%% "
              "sessions/sec of \"off\" — one seqlock SLO sample per "
              "handshake plus relaxed heartbeats, swamped by the "
              "round's modexps; the quantile sort is scrape-time only)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
