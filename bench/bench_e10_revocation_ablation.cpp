// E10 — revocation-design ablation (paper §3): the framework deliberately
// keeps BOTH revocation layers (CGKD rekey + GSIG revocation). This bench
// quantifies the two GSIG mechanisms the instantiations use and replays
// the §3 key-leak attack with and without Phase III.
//
//   * ACJT: Camenisch-Lysyanskaya accumulator — every membership change
//     forces every member to update its witness (O(events) exps each).
//   * KTY: verifier-local revocation — credentials never change, but each
//     Verify pays one exponentiation per revoked member.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "crypto/drbg.h"
#include "gsig/acjt.h"
#include "gsig/kty.h"

using namespace shs;
using namespace shs::bench;

namespace {

void BM_KtyVerifyWithCrl(benchmark::State& state) {
  const auto revoked = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg rng(to_bytes("e10-kty-" + std::to_string(revoked)));
  auto scheme = gsig::KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(0, rng);
  for (std::size_t i = 1; i <= revoked; ++i) {
    (void)scheme->admit(i, rng);
    scheme->revoke(i);
  }
  scheme->update_credential(alice);
  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme->sign(alice, msg, {}, rng);
  for (auto _ : state) scheme->verify(msg, sig, {});
  state.counters["crl_size"] = static_cast<double>(revoked);
}
BENCHMARK(BM_KtyVerifyWithCrl)->Arg(0)->Arg(4)->Arg(16)->Arg(64)
    ->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_AcjtWitnessUpdateAfterRevocations(benchmark::State& state) {
  const auto revoked = static_cast<std::size_t>(state.range(0));
  crypto::HmacDrbg rng(to_bytes("e10-acjt-" + std::to_string(revoked)));
  auto scheme = gsig::AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(0, rng);
  for (std::size_t i = 1; i <= revoked; ++i) (void)scheme->admit(i, rng);
  for (std::size_t i = 1; i <= revoked; ++i) scheme->revoke(i);
  const Bytes update = scheme->export_update(alice.revision);
  for (auto _ : state) {
    gsig::MemberCredential copy = alice;
    scheme->apply_update(copy, update);
    benchmark::DoNotOptimize(copy);
  }
  state.counters["events"] = static_cast<double>(2 * revoked);
}
BENCHMARK(BM_AcjtWitnessUpdateAfterRevocations)->Arg(1)->Arg(4)->Arg(16)
    ->Arg(64)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E10: revocation ablation — accumulator (ACJT) vs "
              "verifier-local CRL (KTY), and the §3 two-layer argument\n");

  // The §3 attack replay, with and without the GSIG layer.
  core::GroupConfig cfg;
  core::GroupAuthority ga("e10", cfg, to_bytes("e10-attack"));
  auto alice = ga.admit(1);
  auto bob = ga.admit(2);
  auto mallory = ga.admit(3);
  for (auto* m : {alice.get(), bob.get(), mallory.get()}) (void)m->update();
  const gsig::MemberCredential stale = mallory->credential();
  ga.remove(3);
  (void)alice->update();
  (void)bob->update();
  const Bytes leaked = alice->group_key();

  auto attack = [&](bool phase3) {
    core::HandshakeOptions opts;
    opts.traceable = phase3;
    auto p0 = alice->handshake_party(0, 3, opts,
                                     to_bytes(phase3 ? "on" : "off"));
    auto p1 = bob->handshake_party(1, 3, opts,
                                   to_bytes(phase3 ? "on2" : "off2"));
    core::HandshakeParticipant evil(ga, stale, leaked, 2, 3, opts,
                                    to_bytes("evil"));
    core::HandshakeParticipant* parts[] = {p0.get(), p1.get(), &evil};
    auto outcomes = core::run_handshake(parts);
    // NB: vector<bool> returns a proxy; convert before `outcomes` dies.
    return static_cast<bool>(outcomes[0].partner[2]);
  };

  table_header("§3 key-leak attack (revoked member + leaked group key)",
               "configuration              | revoked member accepted?");
  std::printf("CGKD-only (Phases I+II)    | %s   <- the broken optimization\n",
              attack(false) ? "YES" : "no");
  std::printf("both layers (Phase III on) | %s   <- the framework's choice\n",
              attack(true) ? "YES" : "no");

  std::printf("\ncost asymmetry of the two GSIG mechanisms (see benchmark "
              "rows below):\n"
              " - KTY/VLR: O(|CRL|) exps per *verification*, free updates\n"
              " - ACJT/accumulator: O(events) exps per *member update*, "
              "verification cost flat\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
