// E8 — GCD.TraceUser cost (paper §7): "In the worst case, the authority
// needs to try to search the right session key and decrypt all theta_i's".
//
// Measures the GA's tracing time over transcripts of m-party handshakes,
// positional pairing (linear in m) versus the paper's worst-case
// exhaustive key-to-theta search (quadratic in m).
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace shs;
using namespace shs::bench;

namespace {

core::HandshakeTranscript& cached_transcript(std::size_t m) {
  static std::map<std::size_t, core::HandshakeTranscript> cache;
  auto it = cache.find(m);
  if (it != cache.end()) return it->second;
  core::GroupConfig cfg;
  BenchGroup& group = cached_group("e8", cfg, 16);
  core::HandshakeOptions options;
  auto outcomes =
      run_group_handshake(group, m, options, "e8-" + std::to_string(m));
  return cache.emplace(m, std::move(outcomes[0].transcript)).first->second;
}

void BM_TracePositional(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  core::GroupConfig cfg;
  BenchGroup& group = cached_group("e8", cfg, 16);
  const auto& transcript = cached_transcript(m);
  for (auto _ : state) {
    auto traced = group.authority->trace(transcript, false);
    if (traced.size() != m) state.SkipWithError("trace incomplete");
  }
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_TracePositional)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_TraceExhaustive(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  core::GroupConfig cfg;
  BenchGroup& group = cached_group("e8", cfg, 16);
  const auto& transcript = cached_transcript(m);
  for (auto _ : state) {
    auto traced = group.authority->trace(transcript, true);
    if (traced.size() != m) state.SkipWithError("trace incomplete");
  }
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_TraceExhaustive)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E8: GA tracing cost over m-party transcripts — positional "
              "vs the paper's worst-case exhaustive search\n");

  core::GroupConfig cfg;
  BenchGroup& group = cached_group("e8", cfg, 16);
  table_header("m | positional ms | exhaustive ms | traced",
               "--+---------------+---------------+-------");
  for (std::size_t m : {2u, 4u, 8u, 16u}) {
    const auto& transcript = cached_transcript(m);
    std::size_t traced_count = 0;
    const double ms1 = time_ms([&] {
      traced_count = group.authority->trace(transcript, false).size();
    });
    const double ms2 = time_ms([&] {
      (void)group.authority->trace(transcript, true);
    });
    std::printf("%2zu | %13.1f | %13.1f | %zu/%zu\n", m, ms1, ms2,
                traced_count, m);
  }
  std::printf("\n(tracing work is dominated by delta decryptions + "
              "GSIG.Open; the exhaustive variant pays the extra theta "
              "trial-decryptions the paper warns about)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
