// E13 — observability overhead: sessions/sec for E11's pooled
// configuration (N concurrent hosted sessions, m = 4, loopback wire,
// 4 pump threads) with the flight recorder off, sampling 1/16 sessions,
// tracing every session, and tracing + debug logging to a null sink.
// The acceptance bar: full tracing costs < 5% sessions/sec vs. off —
// the ring is one fetch_add plus eight relaxed stores per record, and
// modexp attribution is two thread-local reads per round, so the
// handshake crypto should bury it.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "service/service.h"

using namespace shs;
using namespace shs::bench;

namespace {

constexpr std::size_t kM = 4;
constexpr std::size_t kSessions = 32;
constexpr std::size_t kThreads = 4;

struct ObsMode {
  const char* name;
  std::uint64_t sample_every;  // 0 = tracing off
  bool debug_log;
};

constexpr ObsMode kModes[] = {
    {"off", 0, false},
    {"sampled-1/16", 16, false},
    {"full", 1, false},
    {"full+debuglog", 1, true},
};

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    BenchGroup& group, const std::string& salt) {
  core::HandshakeOptions options;
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < kM; ++i) {
    parts.push_back(
        group.members[i]->handshake_party(i, kM, options, to_bytes(salt)));
  }
  return parts;
}

/// E11's run_service with the observability surfaces of `mode` attached;
/// returns wall milliseconds of open + pump (construction excluded).
double run_mode(BenchGroup& group, const ObsMode& mode,
                const std::string& salt) {
  std::vector<std::vector<std::unique_ptr<core::HandshakeParticipant>>> all;
  all.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    all.push_back(make_parts(group, salt + std::to_string(s)));
  }
  obs::TraceOptions to;
  to.capacity = 1 << 16;
  to.sample_every = mode.sample_every == 0 ? 1 : mode.sample_every;
  obs::TraceRecorder trace(to);
  obs::NullSink null_sink;
  obs::Logger::Options lo;
  lo.level = obs::LogLevel::kDebug;
  lo.sink = &null_sink;
  obs::Logger logger(lo);

  service::ServiceOptions options;
  options.threads = kThreads;
  if (mode.sample_every != 0) options.trace = &trace;
  if (mode.debug_log) options.logger = &logger;
  service::RendezvousService svc(options);
  const double ms = time_ms([&] {
    for (auto& parts : all) (void)svc.open_session(std::move(parts));
    svc.pump();
    if (svc.active_sessions() != 0) std::abort();  // bench invariant
  });
  if (mode.sample_every == 1 && trace.recorded() == 0) std::abort();
  return ms;
}

void BM_ObsOverhead(benchmark::State& state) {
  const ObsMode& mode = kModes[static_cast<std::size_t>(state.range(0))];
  BenchGroup& group = cached_group("e13", core::GroupConfig{}, kM);
  int salt = 0;
  for (auto _ : state) {
    const double ms =
        run_mode(group, mode, "bm" + std::to_string(salt++) + "-");
    state.counters["sessions_per_sec"] =
        1000.0 * static_cast<double>(kSessions) / ms;
  }
  state.SetLabel(mode.name);
}
BENCHMARK(BM_ObsOverhead)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E13: observability overhead — E11 pooled configuration "
              "(N=%zu hosted sessions, m=%zu, t=%zu) with tracing off / "
              "sampled / full / full+debug-logging\n",
              kSessions, kM, kThreads);

  BenchGroup& group = cached_group("e13", core::GroupConfig{}, kM);
  (void)run_mode(group, kModes[0], "warm-");  // prewarm the cached group

  JsonReport report("e13");
  table_header(
      "mode            | sessions | wall ms | sessions/sec | vs off",
      "----------------+----------+---------+--------------+-------");
  // Median of three runs per mode: a single 32-session pass is short
  // enough that scheduler noise would otherwise dwarf a 5% budget.
  double off_per_sec = 0;
  for (const ObsMode& mode : kModes) {
    double runs[3];
    for (int r = 0; r < 3; ++r) {
      runs[r] = run_mode(group, mode,
                         std::string(mode.name) + std::to_string(r) + "-");
    }
    std::sort(std::begin(runs), std::end(runs));
    const double ms = runs[1];
    const double per_sec = 1000.0 * static_cast<double>(kSessions) / ms;
    if (off_per_sec == 0) off_per_sec = per_sec;
    const double delta_pct = 100.0 * (off_per_sec - per_sec) / off_per_sec;
    std::printf("%-15s | %8zu | %7.1f | %12.1f | %+5.1f%%\n", mode.name,
                kSessions, ms, per_sec, delta_pct);
    report.add()
        .field("mode", mode.name)
        .field("sessions", static_cast<double>(kSessions))
        .field("pump_threads", static_cast<double>(kThreads))
        .field("wall_ms", ms)
        .field("sessions_per_sec", per_sec)
        .field("overhead_pct", delta_pct);
  }
  report.write();

  std::printf("\n(acceptance: the \"full\" row must stay within 5%% "
              "sessions/sec of \"off\" — tracing is a fetch_add plus "
              "relaxed stores, swamped by the round's modexps)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
