// E7 — partially-successful handshakes (paper §7 Extension): cliques of a
// mixed-group session complete "without incurring any extra complexity".
//
// Fixes m = 8 participants and splits them across g in {1, 2, 4} groups;
// reports each configuration's wall time (should be flat in g) and the
// clique sizes every participant ends up confirming.
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace shs;
using namespace shs::bench;

namespace {

constexpr std::size_t kM = 8;

/// Builds participants for m=8 spread round-robin over `g` groups.
std::vector<core::HandshakeOutcome> run_mixed(std::size_t g,
                                              const std::string& salt) {
  core::GroupConfig cfg;
  std::vector<BenchGroup*> groups;
  for (std::size_t i = 0; i < g; ++i) {
    groups.push_back(&cached_group("e7-g" + std::to_string(g) + "-" +
                                       std::to_string(i),
                                   cfg, kM));
  }
  core::HandshakeOptions options;  // allow_partial on
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t pos = 0; pos < kM; ++pos) {
    BenchGroup& group = *groups[pos % g];
    parts.push_back(group.members[pos / g]->handshake_party(
        pos, kM, options, to_bytes(salt)));
  }
  std::vector<core::HandshakeParticipant*> ptrs;
  for (auto& p : parts) ptrs.push_back(p.get());
  return core::run_handshake(ptrs);
}

void BM_PartialSuccess(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  int salt = 0;
  for (auto _ : state) {
    auto outcomes = run_mixed(g, "e7-" + std::to_string(salt++));
    state.counters["clique_of_p0"] =
        static_cast<double>(outcomes[0].confirmed_count());
  }
  state.counters["groups"] = static_cast<double>(g);
}
BENCHMARK(BM_PartialSuccess)->Arg(1)->Arg(2)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E7: partial success with m=8 split over g groups — claim: "
              "cliques complete at no extra cost\n");

  // Prewarm the cached groups so timings measure handshakes, not setup.
  for (std::size_t g : {1u, 2u, 4u}) (void)run_mixed(g, "warm");

  table_header("g | expected clique sizes | observed | wall ms",
               "--+-----------------------+----------+--------");
  for (std::size_t g : {1u, 2u, 4u}) {
    std::vector<core::HandshakeOutcome> outcomes;
    const double ms =
        time_ms([&] { outcomes = run_mixed(g, "tbl" + std::to_string(g)); });
    std::string observed;
    for (std::size_t i = 0; i < kM; ++i) {
      observed += std::to_string(outcomes[i].confirmed_count());
      if (i + 1 < kM) observed += ",";
    }
    std::printf("%zu | all parties: %zu        | %s | %6.0f\n", g, kM / g,
                observed.c_str(), ms);
  }
  std::printf("\n(every participant confirms exactly its own clique of m/g, "
              "and total time is flat in g: no extra complexity)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
