// E7 — partially-successful handshakes (paper §7 Extension): cliques of a
// mixed-group session complete "without incurring any extra complexity".
//
// Two ways to fracture a session, both ending in exact cliques:
//   * group mix        — m = 8 participants split round-robin over
//                        g in {1, 2, 4} groups (Phase-II tags partition)
//   * network partition — one group of 8, but the net fault library
//                        (PartitionFault gated after Phase I) splits the
//                        wire into c equal cells mid-session
// Reports each configuration's wall time (should be flat in g / c) and
// the clique sizes every participant ends up confirming.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/adversary.h"
#include "net/faults.h"

using namespace shs;
using namespace shs::bench;

namespace {

constexpr std::size_t kM = 8;

/// Builds participants for m=8 spread round-robin over `g` groups.
std::vector<core::HandshakeOutcome> run_mixed(std::size_t g,
                                              const std::string& salt) {
  core::GroupConfig cfg;
  std::vector<BenchGroup*> groups;
  for (std::size_t i = 0; i < g; ++i) {
    groups.push_back(&cached_group("e7-g" + std::to_string(g) + "-" +
                                       std::to_string(i),
                                   cfg, kM));
  }
  core::HandshakeOptions options;  // allow_partial on
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t pos = 0; pos < kM; ++pos) {
    BenchGroup& group = *groups[pos % g];
    parts.push_back(group.members[pos / g]->handshake_party(
        pos, kM, options, to_bytes(salt)));
  }
  std::vector<core::HandshakeParticipant*> ptrs;
  for (auto& p : parts) ptrs.push_back(p.get());
  return core::run_handshake(ptrs);
}

/// One group of 8, but the network splits into `cells` equal cells right
/// after the key agreement (the conformance harness's partition fault).
std::vector<core::HandshakeOutcome> run_partitioned(std::size_t cells,
                                                    const std::string& salt,
                                                    net::FaultLog* log) {
  BenchGroup& group = cached_group("e7-net", core::GroupConfig{}, kM);
  core::HandshakeOptions options;
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t pos = 0; pos < kM; ++pos) {
    parts.push_back(group.members[pos]->handshake_party(pos, kM, options,
                                                        to_bytes(salt)));
  }
  std::vector<core::HandshakeParticipant*> ptrs;
  for (auto& p : parts) ptrs.push_back(p.get());

  std::vector<std::size_t> cell_of(kM);
  for (std::size_t pos = 0; pos < kM; ++pos) {
    cell_of[pos] = pos / (kM / cells);
  }
  const std::size_t phase1_rounds = ptrs.front()->total_rounds() - 2;
  net::ScheduledAdversary cut(
      std::make_unique<net::PartitionFault>(std::move(cell_of), log),
      net::ScheduledAdversary::from_round(phase1_rounds));
  return core::run_handshake(ptrs, cells > 1 ? &cut : nullptr);
}

void BM_PartialSuccess(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  int salt = 0;
  for (auto _ : state) {
    auto outcomes = run_mixed(g, "e7-" + std::to_string(salt++));
    state.counters["clique_of_p0"] =
        static_cast<double>(outcomes[0].confirmed_count());
  }
  state.counters["groups"] = static_cast<double>(g);
}
BENCHMARK(BM_PartialSuccess)->Arg(1)->Arg(2)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

std::string clique_sizes(const std::vector<core::HandshakeOutcome>& outcomes) {
  std::string observed;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    observed += std::to_string(outcomes[i].confirmed_count());
    if (i + 1 < outcomes.size()) observed += ",";
  }
  return observed;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E7: partial success with m=8 split over g groups — claim: "
              "cliques complete at no extra cost\n");

  // Prewarm the cached groups so timings measure handshakes, not setup.
  for (std::size_t g : {1u, 2u, 4u}) (void)run_mixed(g, "warm");
  {
    net::FaultLog warm_log;
    (void)run_partitioned(2, "warm-net", &warm_log);
  }

  JsonReport report("e7");

  table_header("g | expected clique sizes | observed | wall ms",
               "--+-----------------------+----------+--------");
  for (std::size_t g : {1u, 2u, 4u}) {
    std::vector<core::HandshakeOutcome> outcomes;
    const double ms =
        time_ms([&] { outcomes = run_mixed(g, "tbl" + std::to_string(g)); });
    std::printf("%zu | all parties: %zu        | %s | %6.0f\n", g, kM / g,
                clique_sizes(outcomes).c_str(), ms);
    report.add()
        .field("variant", "group_mix")
        .field("groups", static_cast<double>(g))
        .field("expected_clique", static_cast<double>(kM / g))
        .field("cliques", clique_sizes(outcomes))
        .field("wall_ms", ms);
  }

  table_header(
      "c cells | expected clique sizes | observed | cut edges | wall ms",
      "--------+-----------------------+----------+-----------+--------");
  for (std::size_t c : {1u, 2u, 4u}) {
    net::FaultLog log;
    std::vector<core::HandshakeOutcome> outcomes;
    const double ms = time_ms(
        [&] { outcomes = run_partitioned(c, "net" + std::to_string(c), &log); });
    std::printf("%7zu | all parties: %zu        | %s | %9zu | %6.0f\n", c,
                kM / c, clique_sizes(outcomes).c_str(),
                log.count(net::FaultKind::kPartition), ms);
    report.add()
        .field("variant", "partition")
        .field("cells", static_cast<double>(c))
        .field("expected_clique", static_cast<double>(kM / c))
        .field("cliques", clique_sizes(outcomes))
        .field("cut_edges",
               static_cast<double>(log.count(net::FaultKind::kPartition)))
        .field("wall_ms", ms);
  }
  report.write();

  std::printf("\n(every participant confirms exactly its own clique of m/g — "
              "whether split by group membership or by a mid-session network "
              "partition — and total time is flat: no extra complexity)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
