// E14 — cross-session batched verification: sessions/sec for N hosted
// sessions with Phase-III signature checks verified inline vs deferred
// into the shared BatchVerifier (random-linear-combination fold, one
// Straus multi-exp per group per flush). The modexp columns attribute
// the win: inline pays the full per-signature equation cost m(m-1) times
// per session, batching pays one fold across every pending check. The
// kBatchVerify trace records cross-check the attribution — the modexp
// delta measured around the pump must match what the flushes report.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bigint/montgomery.h"
#include "obs/trace.h"
#include "service/service.h"

using namespace shs;
using namespace shs::bench;

namespace {

constexpr std::size_t kSessions = 32;

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    BenchGroup& group, std::size_t m, const std::string& salt) {
  core::HandshakeOptions options;
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(
        group.members[i]->handshake_party(i, m, options, to_bytes(salt)));
  }
  return parts;
}

struct RunResult {
  double ms = 0;          // open + pump wall time
  std::uint64_t modexp = 0;   // pump-thread modexps (threads = 1 only)
  std::uint64_t batch_modexp = 0;  // sum over kBatchVerify trace records
  std::uint64_t batch_jobs = 0;    // jobs resolved per the same records
};

/// Opens `sessions` hosted m-party sessions and pumps them all to
/// completion on one thread, with Phase-III verification inline or
/// batched. Construction is excluded, matching E11.
RunResult run_service(BenchGroup& group, std::size_t m,
                      std::size_t sessions, bool batch,
                      const std::string& salt) {
  std::vector<std::vector<std::unique_ptr<core::HandshakeParticipant>>> all;
  all.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    all.push_back(make_parts(group, m, salt + std::to_string(s)));
  }
  obs::TraceRecorder trace(
      obs::TraceOptions{.capacity = 1 << 14, .sample_every = 1});
  service::ServiceOptions options;
  options.threads = 1;
  options.batch_verify = batch;
  options.batch_seed = to_bytes("bench-e14-seed");
  options.trace = &trace;
  service::RendezvousService svc(options);
  RunResult result;
  const std::uint64_t modexp_start = num::thread_modexp_count();
  result.ms = time_ms([&] {
    for (auto& parts : all) (void)svc.open_session(std::move(parts));
    svc.pump();
    if (svc.active_sessions() != 0) std::abort();  // bench invariant
  });
  result.modexp = num::thread_modexp_count() - modexp_start;
  for (const obs::TraceRecord& r : trace.snapshot()) {
    if (r.type == obs::TraceEvent::kBatchVerify) {
      result.batch_modexp += r.modexp;
      result.batch_jobs += r.a;
    }
  }
  return result;
}

void BM_BatchVerify(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const bool batch = state.range(1) != 0;
  BenchGroup& group =
      cached_group("e14-kty-m" + std::to_string(m), core::GroupConfig{}, m);
  int salt = 0;
  for (auto _ : state) {
    const RunResult r = run_service(
        group, m, kSessions, batch, "bm" + std::to_string(salt++) + "-");
    state.counters["sessions_per_sec"] =
        1000.0 * static_cast<double>(kSessions) / r.ms;
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["batched"] = batch ? 1.0 : 0.0;
}
BENCHMARK(BM_BatchVerify)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E14: cross-session batched verification — %zu hosted "
              "sessions, Phase-III checks inline vs RLC-folded into one "
              "multi-exp per flush\n", kSessions);

  JsonReport report("e14");
  table_header(
      "scheme | m | mode    | wall ms | sessions/sec | speedup | modexp "
      "| modexp/session | batch-attributed",
      "-------+---+---------+---------+--------------+---------+--------"
      "+----------------+-----------------");
  struct SchemeRow {
    const char* name;
    core::GsigKind kind;
  };
  const SchemeRow schemes[] = {{"kty", core::GsigKind::kKty},
                               {"acjt", core::GsigKind::kAcjt}};
  for (const SchemeRow& scheme : schemes) {
    for (std::size_t m : {4u, 8u}) {
      core::GroupConfig config;
      config.gsig = scheme.kind;
      BenchGroup& group = cached_group(
          "e14-" + std::string(scheme.name) + "-m" + std::to_string(m),
          config, m);
      (void)run_service(group, m, 2, true, "warm-");  // prewarm tables
      const RunResult inline_run =
          run_service(group, m, kSessions, false, "inl-");
      const RunResult batched_run =
          run_service(group, m, kSessions, true, "bat-");
      struct ModeRow {
        const char* mode;
        const RunResult& r;
      } rows[] = {{"inline", inline_run}, {"batched", batched_run}};
      for (const ModeRow& row : rows) {
        const double per_sec =
            1000.0 * static_cast<double>(kSessions) / row.r.ms;
        const double speedup = inline_run.ms / row.r.ms;
        std::printf(
            "%-6s | %zu | %-7s | %7.0f | %12.1f | %6.2fx | %6llu | %14.1f "
            "| %9llu/%llu\n",
            scheme.name, m, row.mode, row.r.ms, per_sec, speedup,
            static_cast<unsigned long long>(row.r.modexp),
            static_cast<double>(row.r.modexp) / kSessions,
            static_cast<unsigned long long>(row.r.batch_modexp),
            static_cast<unsigned long long>(row.r.batch_jobs));
        report.add()
            .field("scheme", scheme.name)
            .field("m", static_cast<double>(m))
            .field("mode", row.mode)
            .field("sessions", static_cast<double>(kSessions))
            .field("wall_ms", row.r.ms)
            .field("sessions_per_sec", per_sec)
            .field("speedup_vs_inline", speedup)
            .field("modexp_total", static_cast<double>(row.r.modexp))
            .field("modexp_per_session",
                   static_cast<double>(row.r.modexp) / kSessions)
            .field("batch_modexp", static_cast<double>(row.r.batch_modexp))
            .field("batch_jobs", static_cast<double>(row.r.batch_jobs));
      }
    }
  }
  report.write();

  std::printf(
      "\n(batched mode defers every Phase-III signature check into the "
      "shared BatchVerifier: dedup collapses the m-1 copies of each "
      "check, then one random-linear-combination multi-exp verifies the "
      "whole wave — the modexp column collapses while verdicts stay "
      "bit-identical; 'batch-attributed' is the same cost as reported by "
      "the kBatchVerify trace records)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
