// E17 — group-authority churn: the AuthorityEngine (the served GC of
// DESIGN §14) under a sustained leave/join/refresh mix at group sizes up
// to n = 10^6, per scheme. This is the service-level companion to E4's
// raw-controller rows: every op goes through the engine mutex, every
// broadcast is the epoch-stamped message the transport fans out, and a
// sampled member applies the whole feed through MemberSync to price the
// client side of an epoch bump.
//
// Rows: rekeys/sec sustained by the authority, broadcast bytes per op,
// bytes per member (the per-subscriber fan-out cost), and the member's
// mean apply latency. lkh stays ~O(log n) per op while star degrades
// linearly — the reason --scheme lkh is the at-scale default. Emits
// BENCH_e17.json. SHS_BENCH_E17_MAX_N caps the sweep for smoke runs.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "authority/engine.h"
#include "authority/member_sync.h"
#include "bench_util.h"

namespace shs::bench {
namespace {

std::size_t max_n_of_env() {
  const char* env = std::getenv("SHS_BENCH_E17_MAX_N");
  const long v = env != nullptr && *env != '\0' ? std::atol(env) : 0;
  return v > 0 ? static_cast<std::size_t>(v) : 1000000u;
}

struct Row {
  double bootstrap_s = 0;
  double rekeys_per_sec = 0;
  double broadcast_bytes = 0;
  double bytes_per_member = 0;
  double member_apply_us = 0;
};

/// Bootstraps n members, then drives `reps` churn ops cycling
/// leave / join / refresh (membership returns to n after each cycle;
/// member 1 is never revoked so it can replay the feed afterwards).
Row run_row(authority::Scheme scheme, std::size_t n) {
  const std::size_t reps =
      std::max<std::size_t>(3, std::min<std::size_t>(300, 3000000 / n));
  authority::AuthorityOptions options;
  options.scheme = scheme;
  // Headroom for the churn joins: subset difference burns revoked leaves
  // (stateless labels are fixed forever), so leave does not free a slot.
  options.capacity = n + reps;
  options.seed = 0xE17 + n;
  authority::AuthorityEngine engine(options);

  std::vector<cgkd::MemberId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(i + 1);
  Row row;
  row.bootstrap_s = time_ms([&] { (void)engine.bootstrap(ids); }) / 1000.0;

  authority::MemberSync sync;
  sync.install_state(engine.member_state(1));

  std::vector<cgkd::RekeyMessage> feed;
  feed.reserve(reps);
  cgkd::MemberId next_id = n + 1;
  double bytes = 0;
  const double churn_ms = time_ms([&] {
    for (std::size_t r = 0; r < reps; ++r) {
      switch (r % 3) {
        case 0: feed.push_back(engine.leave(ids.back())); break;
        case 1:
          ids.back() = next_id++;
          feed.push_back(engine.join(ids.back()));
          break;
        default: feed.push_back(engine.refresh()); break;
      }
      bytes += static_cast<double>(feed.back().size());
    }
  });
  row.rekeys_per_sec = static_cast<double>(reps) / (churn_ms / 1000.0);
  row.broadcast_bytes = bytes / static_cast<double>(reps);
  row.bytes_per_member =
      row.broadcast_bytes / static_cast<double>(engine.member_count());

  std::size_t applied = 0;
  const double apply_ms = time_ms([&] {
    for (const auto& msg : feed) {
      applied += sync.apply(msg) == authority::ApplyResult::kApplied ? 1 : 0;
    }
  });
  row.member_apply_us = apply_ms * 1000.0 / static_cast<double>(feed.size());
  if (applied != feed.size() || sync.group_key() != engine.group_key()) {
    std::fprintf(stderr, "member feed diverged (%zu/%zu applied)\n", applied,
                 feed.size());
    std::exit(1);
  }
  return row;
}

}  // namespace
}  // namespace shs::bench

int main() {
  using namespace shs;
  using namespace shs::bench;
  const std::size_t max_n = max_n_of_env();
  JsonReport report("e17");

  table_header(
      "E17: authority churn (leave/join/refresh mix through the engine)",
      "scheme   n        boot_s   rekeys/s   bytes/op   bytes/member  apply_us");
  for (authority::Scheme scheme :
       {authority::Scheme::kLkh, authority::Scheme::kSubsetDiff,
        authority::Scheme::kStar}) {
    for (std::size_t n : {1000u, 10000u, 100000u, 1000000u}) {
      if (n > max_n) continue;
      const Row row = run_row(scheme, n);
      std::printf("%-8s %-8zu %-8.2f %-10.1f %-10.0f %-13.3f %.1f\n",
                  authority::to_string(scheme), n, row.bootstrap_s,
                  row.rekeys_per_sec, row.broadcast_bytes,
                  row.bytes_per_member, row.member_apply_us);
      report.add()
          .field("scheme", std::string(authority::to_string(scheme)))
          .field("n", static_cast<double>(n))
          .field("bootstrap_s", row.bootstrap_s)
          .field("rekeys_per_sec", row.rekeys_per_sec)
          .field("broadcast_bytes", row.broadcast_bytes)
          .field("bytes_per_member", row.bytes_per_member)
          .field("member_apply_us", row.member_apply_us);
    }
  }
  std::printf("\n(lkh sustains churn at 10^6 members with ~O(log n) work and "
              "bytes per op;\n star pays O(n) per rekey — usable only for "
              "small groups; sd sits between,\n with stateless members that "
              "tolerate feed gaps)\n");
  return 0;
}
