// E9 — GSIG microbenchmarks (paper §4 / §8 / Appendix H): Sign, Verify,
// Open and Join for both instantiations' group-signature schemes, plus
// KTY's self-distinction variant. These are the dominant costs inside
// Phase III, so they explain the E1-E3 numbers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "bigint/montgomery.h"
#include "crypto/drbg.h"
#include "gsig/acjt.h"
#include "gsig/kty.h"

using namespace shs;

namespace {

struct Ctx {
  std::unique_ptr<gsig::GsigGroup> scheme;
  gsig::MemberCredential credential;
  Bytes message = to_bytes("benchmark message");
  Bytes signature;
  Bytes sd_signature;  // KTY only
  crypto::HmacDrbg rng{to_bytes("e9")};
};

Ctx& context(const std::string& name) {
  static std::map<std::string, Ctx> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  Ctx ctx;
  const algebra::ParamLevel level = name.ends_with("-1024")
                                        ? algebra::ParamLevel::kBench
                                        : algebra::ParamLevel::kTest;
  if (name.starts_with("acjt")) {
    ctx.scheme = gsig::AcjtGsig::create(level, ctx.rng);
  } else {
    ctx.scheme = gsig::KtyGsig::create(level, ctx.rng);
  }
  ctx.credential = ctx.scheme->admit(1, ctx.rng);
  ctx.signature = ctx.scheme->sign(ctx.credential, ctx.message, {}, ctx.rng);
  if (ctx.scheme->supports_self_distinction()) {
    ctx.sd_signature = ctx.scheme->sign(ctx.credential, ctx.message,
                                        to_bytes("session"), ctx.rng);
  }
  return cache.emplace(name, std::move(ctx)).first->second;
}

void BM_Sign(benchmark::State& state, const std::string& name) {
  Ctx& ctx = context(name);
  for (auto _ : state) {
    auto sig = ctx.scheme->sign(ctx.credential, ctx.message, {}, ctx.rng);
    benchmark::DoNotOptimize(sig);
    state.counters["sig_bytes"] = static_cast<double>(sig.size());
  }
}

void BM_Verify(benchmark::State& state, const std::string& name) {
  Ctx& ctx = context(name);
  for (auto _ : state) {
    ctx.scheme->verify(ctx.message, ctx.signature, {});
  }
}

void BM_Open(benchmark::State& state, const std::string& name) {
  Ctx& ctx = context(name);
  for (auto _ : state) {
    auto id = ctx.scheme->open(ctx.message, ctx.signature, {});
    benchmark::DoNotOptimize(id);
  }
}

void BM_AcjtSign(benchmark::State& s) { BM_Sign(s, "acjt"); }
void BM_AcjtVerify(benchmark::State& s) { BM_Verify(s, "acjt"); }
void BM_AcjtOpen(benchmark::State& s) { BM_Open(s, "acjt"); }
void BM_KtySign(benchmark::State& s) { BM_Sign(s, "kty"); }
void BM_KtyVerify(benchmark::State& s) { BM_Verify(s, "kty"); }
void BM_KtyOpen(benchmark::State& s) { BM_Open(s, "kty"); }

void BM_KtySignSelfDistinct(benchmark::State& state) {
  Ctx& ctx = context("kty");
  for (auto _ : state) {
    auto sig = ctx.scheme->sign(ctx.credential, ctx.message,
                                to_bytes("session"), ctx.rng);
    benchmark::DoNotOptimize(sig);
  }
}

void BM_KtyVerifySelfDistinct(benchmark::State& state) {
  Ctx& ctx = context("kty");
  for (auto _ : state) {
    ctx.scheme->verify(ctx.message, ctx.sd_signature, to_bytes("session"));
  }
}

void BM_Join(benchmark::State& state, const std::string& name) {
  // Joins mutate the scheme; use a private instance.
  crypto::HmacDrbg rng(to_bytes("e9-join-" + name));
  std::unique_ptr<gsig::GsigGroup> scheme;
  if (name == "acjt") {
    scheme = gsig::AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  } else {
    scheme = gsig::KtyGsig::create(algebra::ParamLevel::kTest, rng);
  }
  gsig::MemberId id = 1;
  for (auto _ : state) {
    auto cred = scheme->admit(id++, rng);
    benchmark::DoNotOptimize(cred);
  }
}
void BM_AcjtJoin(benchmark::State& s) { BM_Join(s, "acjt"); }
void BM_KtyJoin(benchmark::State& s) { BM_Join(s, "kty"); }

// Modulus scaling: the same operations over the kBench 1024-bit modulus.
void BM_KtySign1024(benchmark::State& s) { BM_Sign(s, "kty-1024"); }
void BM_KtyVerify1024(benchmark::State& s) { BM_Verify(s, "kty-1024"); }

BENCHMARK(BM_AcjtSign)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_AcjtVerify)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_AcjtOpen)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_KtySign)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_KtyVerify)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_KtyOpen)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_KtySignSelfDistinct)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_KtyVerifySelfDistinct)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_AcjtJoin)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_KtyJoin)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_KtySign1024)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_KtyVerify1024)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

// Machine-readable timings: a few explicit iterations per op with the
// process-wide modexp counter sampled around them.
void write_json_report() {
  bench::JsonReport report("e9");
  const int iters = 5;
  struct Op {
    const char* name;
    std::function<void(Ctx&)> run;
  };
  const Op ops[] = {
      {"sign", [](Ctx& c) {
         benchmark::DoNotOptimize(
             c.scheme->sign(c.credential, c.message, {}, c.rng));
       }},
      {"verify", [](Ctx& c) {
         c.scheme->verify(c.message, c.signature, {});
       }},
      {"open", [](Ctx& c) {
         benchmark::DoNotOptimize(c.scheme->open(c.message, c.signature, {}));
       }},
  };
  for (const char* scheme : {"acjt", "kty"}) {
    for (const Op& op : ops) {
      Ctx& ctx = context(scheme);
      op.run(ctx);  // warm-up (fills fixed-base tables)
      num::reset_modexp_count();
      const double ms = bench::time_ms([&] {
        for (int i = 0; i < iters; ++i) op.run(ctx);
      });
      report.add()
          .field("op", std::string(scheme) + "_" + op.name)
          .field("ms_per_op", ms / iters)
          .field("ns_per_op", ms / iters * 1e6)
          .field("modexps_per_op",
                 static_cast<double>(num::modexp_count()) / iters);
    }
  }
  report.write();
}

int main(int argc, char** argv) {
  std::printf("E9: group-signature microbenchmarks (512-bit modulus, "
              "compact parameter profile)\n");
  std::printf("signature sizes: acjt=%zu bytes (bound %zu), kty=%zu bytes "
              "(bound %zu)\n",
              context("acjt").signature.size(),
              context("acjt").scheme->signature_size_bound(),
              context("kty").signature.size(),
              context("kty").scheme->signature_size_bound());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  write_json_report();
  return 0;
}
