// E2 — Scheme 2 (self-distinction, §8.2) keeps the Scheme-1 asymptotics:
// "Computational complexity in number of modular exponentiations
// (per-user) remains O(m) and communication complexity (also per-user) in
// number of messages also O(m)."
//
// Runs Scheme 2 (KTY signatures with the common T7, Burmester-Desmedt,
// LKH) next to Scheme 1 (ACJT) at the same sizes and reports the per-party
// exponentiation counts and the Scheme2/Scheme1 wall-time ratio.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bigint/montgomery.h"

using namespace shs;
using namespace shs::bench;

namespace {

core::GroupConfig config_for(core::GsigKind gsig) {
  core::GroupConfig cfg;
  cfg.gsig = gsig;
  cfg.cgkd = core::CgkdKind::kLkh;
  return cfg;
}

void BM_Scheme2Handshake(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  BenchGroup& group =
      cached_group("e2-kty", config_for(core::GsigKind::kKty), 16);
  core::HandshakeOptions options;
  options.self_distinction = true;
  int salt = 0;
  for (auto _ : state) {
    num::reset_modexp_count();
    auto outcomes = run_group_handshake(group, m, options,
                                        "e2-" + std::to_string(salt++));
    if (!outcomes[0].full_success) state.SkipWithError("handshake failed");
    state.counters["exps_per_party"] =
        static_cast<double>(num::modexp_count()) / static_cast<double>(m);
  }
  state.counters["m"] = static_cast<double>(m);
}

BENCHMARK(BM_Scheme2Handshake)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E2: Scheme 2 (KTY + self-distinction) vs Scheme 1 (ACJT) — "
              "paper claim: self-distinction keeps O(m) exps and messages\n");

  BenchGroup& s1 = cached_group("e2-acjt", config_for(core::GsigKind::kAcjt), 16);
  BenchGroup& s2 = cached_group("e2-kty", config_for(core::GsigKind::kKty), 16);
  core::HandshakeOptions o1;
  core::HandshakeOptions o2;
  o2.self_distinction = true;

  table_header(
      "m | s1 exps/party | s2 exps/party | s1 ms | s2 ms | s2/s1",
      "--+--------------+--------------+-------+-------+------");
  for (std::size_t m : {2u, 4u, 8u, 16u}) {
    num::reset_modexp_count();
    const double ms1 = time_ms([&] {
      if (!run_group_handshake(s1, m, o1, "a" + std::to_string(m))[0]
               .full_success) {
        std::abort();
      }
    });
    const double e1 =
        static_cast<double>(num::modexp_count()) / static_cast<double>(m);
    num::reset_modexp_count();
    const double ms2 = time_ms([&] {
      auto out = run_group_handshake(s2, m, o2, "b" + std::to_string(m));
      if (!out[0].full_success || out[0].self_distinction_violated) {
        std::abort();
      }
    });
    const double e2 =
        static_cast<double>(num::modexp_count()) / static_cast<double>(m);
    std::printf("%2zu | %12.1f | %12.1f | %5.0f | %5.0f | %4.2fx\n", m, e1,
                e2, ms1, ms2, ms2 / ms1);
  }
  std::printf("\n(both columns grow linearly in m; scheme 2 pays a constant "
              "factor for T4..T7 and the extra proof relations)\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
