// ChannelEndpoint behavior: full-mesh byte-exact delivery, the rekey
// state machine (thresholds, explicit bumps, grace, fail-closed epochs),
// close/drain semantics, and the PR-2-style seeded adversary sweep at
// the record layer — tamper / replay / reorder / drop on both DATA and
// REKEY records must never corrupt a delivered plaintext and must leave
// every rejection counted.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "channel/endpoint.h"
#include "channel/keys.h"
#include "channel/record.h"
#include "common/bytes.h"
#include "common/errors.h"

namespace shs::channel {
namespace {

Bytes session_key() { return to_bytes("a thirty-two byte session key!!!"); }

/// A clique of endpoints over one ChannelKeys, with positions 0..m-1.
struct Mesh {
  std::vector<ChannelEndpoint> members;

  explicit Mesh(std::size_t m, ChannelOptions options = {}) {
    std::vector<std::uint32_t> positions(m);
    for (std::size_t i = 0; i < m; ++i) {
      positions[i] = static_cast<std::uint32_t>(i);
    }
    const ChannelKeys keys(session_key(), 77, positions);
    members.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      members.emplace_back(keys, static_cast<std::uint32_t>(i), options);
    }
  }

  /// Fans `frames` to every member except the sender, asserting each is
  /// delivered with the expected plaintext (REKEYs judged kRekeyed).
  void broadcast_expect(std::uint32_t sender,
                        const std::vector<service::Frame>& frames,
                        BytesView expected) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i == sender) continue;
      Bytes delivered;
      for (const auto& frame : frames) {
        const RecordResult r = members[i].open(frame);
        ASSERT_NE(r.verdict, RecordVerdict::kRejected)
            << "receiver " << i << ": " << to_string(r.reason);
        if (r.verdict == RecordVerdict::kDelivered) {
          delivered = r.plaintext;
          EXPECT_EQ(r.sender, sender);
        }
      }
      EXPECT_EQ(delivered, Bytes(expected.begin(), expected.end()))
          << "receiver " << i;
    }
  }
};

TEST(ChannelEndpoint, TwoPartyByteExact) {
  Mesh mesh(2);
  const Bytes msg = to_bytes("hello from position zero");
  mesh.broadcast_expect(0, mesh.members[0].send(msg), msg);
  const Bytes reply = to_bytes("and back");
  mesh.broadcast_expect(1, mesh.members[1].send(reply), reply);
}

TEST(ChannelEndpoint, FullMeshByteExact) {
  for (const std::size_t m : {3u, 4u}) {
    Mesh mesh(m);
    for (std::size_t round = 0; round < 8; ++round) {
      for (std::size_t s = 0; s < m; ++s) {
        const Bytes msg = to_bytes("round " + std::to_string(round) +
                                   " from " + std::to_string(s));
        mesh.broadcast_expect(static_cast<std::uint32_t>(s),
                              mesh.members[s].send(msg), msg);
      }
    }
    for (const auto& member : mesh.members) {
      EXPECT_EQ(member.stats().records_rejected, 0u);
      EXPECT_EQ(member.stats().records_delivered, 8 * (m - 1));
    }
  }
}

TEST(ChannelEndpoint, PaddingHidesLengthOnTheWire) {
  ChannelOptions options;
  options.pad_quantum = 256;
  Mesh mesh(2, options);
  for (const std::size_t len : {0u, 1u, 100u, 252u, 253u, 500u}) {
    const Bytes msg(len, 0x61);
    const auto frames = mesh.members[0].send(msg);
    ASSERT_EQ(frames.size(), 1u);
    // Ciphertext length reveals only the padded bucket.
    const std::size_t body =
        frames[0].payload.size() - kRecordHeaderSize - crypto::Aead::kOverhead;
    EXPECT_EQ(body % 256, 0u) << "len " << len;
    mesh.broadcast_expect(0, frames, msg);
  }
}

TEST(ChannelEndpoint, EmptyAndMaxPlaintext) {
  ChannelOptions options;
  options.max_plaintext = 1024;
  Mesh mesh(2, options);
  mesh.broadcast_expect(0, mesh.members[0].send(Bytes{}), Bytes{});
  const Bytes full(1024, 0xee);
  mesh.broadcast_expect(0, mesh.members[0].send(full), full);
  EXPECT_THROW((void)mesh.members[0].send(Bytes(1025, 0)), ProtocolError);
}

// ------------------------------------------------------------- rekeying

TEST(ChannelEndpoint, RecordCountThresholdTriggersRekey) {
  ChannelOptions options;
  options.rekey_after_records = 4;
  Mesh mesh(2, options);
  std::uint32_t max_epoch = 0;
  for (int i = 0; i < 20; ++i) {
    const Bytes msg = to_bytes("msg " + std::to_string(i));
    mesh.broadcast_expect(0, mesh.members[0].send(msg), msg);
    max_epoch = std::max(max_epoch, mesh.members[0].send_epoch());
  }
  EXPECT_GE(max_epoch, 4u);  // 20 records / 4 per epoch
  EXPECT_GE(mesh.members[0].stats().rekeys_sent, 4u);
  EXPECT_EQ(mesh.members[1].stats().rekeys_accepted,
            mesh.members[0].stats().rekeys_sent);
  EXPECT_EQ(mesh.members[1].stats().records_rejected, 0u);
}

TEST(ChannelEndpoint, ByteCountThresholdTriggersRekey) {
  ChannelOptions options;
  options.rekey_after_bytes = 4096;
  Mesh mesh(2, options);
  for (int i = 0; i < 10; ++i) {
    const Bytes msg(1500, static_cast<std::uint8_t>(i));
    mesh.broadcast_expect(0, mesh.members[0].send(msg), msg);
  }
  EXPECT_GE(mesh.members[0].send_epoch(), 3u);
  EXPECT_EQ(mesh.members[1].stats().records_rejected, 0u);
}

TEST(ChannelEndpoint, ExplicitRekeyWithGrace) {
  ChannelOptions options;
  options.grace_records = 2;
  Mesh mesh(2, options);

  // Two old-epoch records captured before the rekey...
  const auto old_a = mesh.members[0].send(to_bytes("old a"));
  const auto old_b = mesh.members[0].send(to_bytes("old b"));
  const auto old_c = mesh.members[0].send(to_bytes("old c"));
  ASSERT_EQ(old_a.size(), 1u);

  const service::Frame rekey = mesh.members[0].rekey();
  EXPECT_EQ(mesh.members[0].send_epoch(), 1u);
  EXPECT_EQ(mesh.members[1].open(rekey).verdict, RecordVerdict::kRekeyed);

  // New-epoch traffic flows...
  mesh.broadcast_expect(0, mesh.members[0].send(to_bytes("new")),
                        to_bytes("new"));

  // ...and the grace budget admits exactly two stragglers.
  EXPECT_EQ(mesh.members[1].open(old_a[0]).verdict, RecordVerdict::kDelivered);
  EXPECT_EQ(mesh.members[1].open(old_b[0]).verdict, RecordVerdict::kDelivered);
  const RecordResult late = mesh.members[1].open(old_c[0]);
  EXPECT_EQ(late.verdict, RecordVerdict::kRejected);
  EXPECT_EQ(late.reason, RejectReason::kStaleEpoch);
  EXPECT_EQ(mesh.members[1].stats().rejected(RejectReason::kStaleEpoch), 1u);
}

TEST(ChannelEndpoint, DroppedRekeyFailsClosed) {
  Mesh mesh(2);
  (void)mesh.members[0].rekey();  // REKEY lost in transit
  const auto after = mesh.members[0].send(to_bytes("epoch 1 data"));
  ASSERT_EQ(after.size(), 1u);
  const RecordResult r = mesh.members[1].open(after[0]);
  EXPECT_EQ(r.verdict, RecordVerdict::kRejected);
  EXPECT_EQ(r.reason, RejectReason::kBadEpoch);
  EXPECT_TRUE(r.plaintext.empty());
}

TEST(ChannelEndpoint, RetiredEpochFailsClosed) {
  Mesh mesh(2);
  const auto epoch0 = mesh.members[0].send(to_bytes("epoch 0"));
  EXPECT_EQ(mesh.members[1].open(mesh.members[0].rekey()).verdict,
            RecordVerdict::kRekeyed);
  EXPECT_EQ(mesh.members[1].open(mesh.members[0].rekey()).verdict,
            RecordVerdict::kRekeyed);
  // Two epochs behind: no grace applies, the key is gone.
  const RecordResult r = mesh.members[1].open(epoch0[0]);
  EXPECT_EQ(r.verdict, RecordVerdict::kRejected);
  EXPECT_EQ(r.reason, RejectReason::kStaleEpoch);
}

TEST(ChannelEndpoint, CrossEpochReplayRejected) {
  // A record accepted in epoch 0 and replayed after the rekey must not
  // come back to life under the fresh replay window.
  ChannelOptions options;
  options.grace_records = 8;
  Mesh mesh(2, options);
  const auto first = mesh.members[0].send(to_bytes("original"));
  EXPECT_EQ(mesh.members[1].open(first[0]).verdict, RecordVerdict::kDelivered);
  EXPECT_EQ(mesh.members[1].open(mesh.members[0].rekey()).verdict,
            RecordVerdict::kRekeyed);
  const RecordResult replay = mesh.members[1].open(first[0]);
  EXPECT_EQ(replay.verdict, RecordVerdict::kRejected);
  EXPECT_EQ(replay.reason, RejectReason::kReplayed);
}

// ---------------------------------------------------------- close/drain

TEST(ChannelEndpoint, CloseAndDrain) {
  Mesh mesh(3);
  EXPECT_FALSE(mesh.members[0].drained());

  const service::Frame close0 = mesh.members[0].close_frame();
  EXPECT_TRUE(mesh.members[0].closed());
  EXPECT_THROW((void)mesh.members[0].send(to_bytes("after close")),
               ProtocolError);

  const RecordResult r1 = mesh.members[1].open(close0);
  EXPECT_EQ(r1.verdict, RecordVerdict::kPeerClosed);
  EXPECT_EQ(r1.sender, 0u);
  EXPECT_FALSE(mesh.members[1].drained());  // member 2 still live, self open

  // A duplicated CLOSE hits the closed-sender guard before any crypto.
  const RecordResult dup = mesh.members[1].open(close0);
  EXPECT_EQ(dup.verdict, RecordVerdict::kRejected);
  EXPECT_EQ(dup.reason, RejectReason::kSenderClosed);

  (void)mesh.members[1].open(mesh.members[2].close_frame());
  (void)mesh.members[1].close_frame();
  EXPECT_TRUE(mesh.members[1].drained());
}

TEST(ChannelEndpoint, RecordsAfterSenderCloseRejected) {
  Mesh mesh(2);
  const auto data = mesh.members[0].send(to_bytes("straggler"));
  EXPECT_EQ(mesh.members[1].open(mesh.members[0].close_frame()).verdict,
            RecordVerdict::kPeerClosed);
  const RecordResult r = mesh.members[1].open(data[0]);
  EXPECT_EQ(r.verdict, RecordVerdict::kRejected);
  EXPECT_EQ(r.reason, RejectReason::kSenderClosed);
}

// ----------------------------------------------------- addressing guards

TEST(ChannelEndpoint, AddressingGuards) {
  Mesh mesh(2);
  const auto frames = mesh.members[0].send(to_bytes("msg"));

  // Our own record echoed back.
  const RecordResult self = mesh.members[0].open(frames[0]);
  EXPECT_EQ(self.reason, RejectReason::kSelfSender);

  // A frame for some other session.
  service::Frame wrong_sid = frames[0];
  wrong_sid.session_id = 78;
  EXPECT_EQ(mesh.members[1].open(wrong_sid).reason,
            RejectReason::kWrongSession);

  // A position outside the clique.
  service::Frame stranger = frames[0];
  stranger.position = 9;
  EXPECT_EQ(mesh.members[1].open(stranger).reason,
            RejectReason::kUnknownSender);

  // Not a channel frame at all / truncated record.
  service::Frame not_channel = frames[0];
  not_channel.round = 2;
  EXPECT_EQ(mesh.members[1].open(not_channel).reason,
            RejectReason::kMalformed);
  service::Frame truncated = frames[0];
  truncated.payload.resize(kMinRecordPayload - 1);
  EXPECT_EQ(mesh.members[1].open(truncated).reason, RejectReason::kMalformed);

  EXPECT_EQ(mesh.members[1].stats().records_delivered, 0u);
}

TEST(ChannelEndpoint, ReceiverEnforcesItsOwnPlaintextCap) {
  ChannelOptions big;
  big.max_plaintext = 4096;
  ChannelOptions small;
  small.max_plaintext = 64;
  const ChannelKeys keys(session_key(), 77, {0, 1});
  ChannelEndpoint sender(keys, 0, big);
  ChannelEndpoint receiver(keys, 1, small);
  const RecordResult r = receiver.open(sender.send(Bytes(1000, 0xaa))[0]);
  EXPECT_EQ(r.verdict, RecordVerdict::kRejected);
  EXPECT_EQ(r.reason, RejectReason::kOversized);
}

// ------------------------------------------------------- adversary sweep
//
// The PR-2 handshake adversary sweep, transplanted to the record layer:
// a seeded adversary tampers, replays, reorders and drops records (DATA
// and REKEY alike) between a sender and a receiver. Invariants:
//   * every delivered plaintext is byte-identical to one the sender sent
//     (zero corruption), delivered at most once;
//   * every non-delivery is a counted rejection — nothing vanishes
//     silently inside the endpoint;
//   * a dropped REKEY fails the epoch closed rather than falling back.

struct SweepOutcome {
  std::size_t delivered = 0;
  std::size_t corrupted = 0;
  std::size_t rejected = 0;
};

SweepOutcome run_adversary_sweep(std::uint64_t seed, double p_tamper,
                                 double p_replay, double p_reorder,
                                 double p_drop) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  ChannelOptions options;
  options.rekey_after_records = 16;  // plenty of REKEYs inside the sweep
  const ChannelKeys keys(session_key(), 77, {0, 1});
  ChannelEndpoint sender(keys, 0, options);
  ChannelEndpoint receiver(keys, 1, options);

  std::vector<Bytes> sent;
  std::vector<service::Frame> wire;
  for (int i = 0; i < 400; ++i) {
    Bytes msg(1 + static_cast<std::size_t>(rng() % 96), 0);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
    for (auto& frame : sender.send(msg)) wire.push_back(std::move(frame));
    sent.push_back(std::move(msg));
  }

  // The adversary's schedule, applied frame by frame.
  std::vector<service::Frame> schedule;
  for (auto& frame : wire) {
    if (coin(rng) < p_drop) continue;
    if (coin(rng) < p_tamper) {
      service::Frame bent = frame;
      bent.payload[rng() % bent.payload.size()] ^=
          static_cast<std::uint8_t>(1 + rng() % 255);
      schedule.push_back(std::move(bent));
      continue;  // the original is lost: tamper-in-place
    }
    schedule.push_back(frame);
    if (coin(rng) < p_replay) schedule.push_back(frame);
    if (schedule.size() >= 2 && coin(rng) < p_reorder) {
      std::swap(schedule[schedule.size() - 1], schedule[schedule.size() - 2]);
    }
  }

  SweepOutcome outcome;
  std::map<Bytes, std::size_t> budget;  // each plaintext deliverable once
  for (const auto& msg : sent) ++budget[msg];
  for (const auto& frame : schedule) {
    const RecordResult r = receiver.open(frame);
    switch (r.verdict) {
      case RecordVerdict::kDelivered: {
        ++outcome.delivered;
        auto it = budget.find(r.plaintext);
        if (it == budget.end() || it->second == 0) {
          ++outcome.corrupted;  // never sent, or delivered twice
        } else {
          --it->second;
        }
        break;
      }
      case RecordVerdict::kRejected:
        ++outcome.rejected;
        break;
      case RecordVerdict::kRekeyed:
      case RecordVerdict::kPeerClosed:
        break;
    }
  }

  // Every rejection the endpoint reported is attributed to a reason.
  const ChannelStats& stats = receiver.stats();
  std::uint64_t by_reason = 0;
  for (const auto count : stats.rejected_by_reason) by_reason += count;
  EXPECT_EQ(by_reason, stats.records_rejected);
  EXPECT_EQ(stats.records_rejected, outcome.rejected);
  EXPECT_EQ(stats.rejected(RejectReason::kNone), 0u);
  return outcome;
}

TEST(ChannelAdversary, TamperNeverCorrupts) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const SweepOutcome o = run_adversary_sweep(seed, 0.3, 0.0, 0.0, 0.0);
    EXPECT_EQ(o.corrupted, 0u) << "seed " << seed;
    EXPECT_GT(o.rejected, 0u) << "seed " << seed;
    EXPECT_GT(o.delivered, 0u) << "seed " << seed;
  }
}

TEST(ChannelAdversary, ReplayDeliversAtMostOnce) {
  const SweepOutcome o = run_adversary_sweep(0xbeef, 0.0, 0.5, 0.0, 0.0);
  EXPECT_EQ(o.corrupted, 0u);
  EXPECT_GT(o.rejected, 0u);  // the duplicates
}

TEST(ChannelAdversary, ReorderWithinWindowIsTolerated) {
  const SweepOutcome o = run_adversary_sweep(0xf00d, 0.0, 0.0, 0.5, 0.0);
  EXPECT_EQ(o.corrupted, 0u);
  EXPECT_GT(o.delivered, 350u);  // adjacent swaps stay inside the window
}

TEST(ChannelAdversary, DropsFailClosed) {
  // Dropping frames (REKEYs included) may strand later records in an
  // unannounced epoch — they must be rejected, never mis-delivered.
  for (const std::uint64_t seed : {7ull, 8ull}) {
    const SweepOutcome o = run_adversary_sweep(seed, 0.0, 0.0, 0.0, 0.2);
    EXPECT_EQ(o.corrupted, 0u) << "seed " << seed;
  }
}

TEST(ChannelAdversary, CombinedOnslaught) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const SweepOutcome o = run_adversary_sweep(seed, 0.1, 0.1, 0.2, 0.1);
    EXPECT_EQ(o.corrupted, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace shs::channel
