// Channel record-layer units: the key schedule, the deterministic-IV
// AEAD overload (satellite of this PR), record seal/open and its
// header/IV/AAD binding, padding, the anti-replay window, and the
// per-instance FrameBuffer payload-cap option with its 1 MiB-default
// regression pin.
#include <gtest/gtest.h>

#include "channel/keys.h"
#include "channel/record.h"
#include "common/bytes.h"
#include "common/errors.h"
#include "crypto/aead.h"
#include "crypto/drbg.h"
#include "service/frame.h"

namespace shs::channel {
namespace {

Bytes test_session_key() { return to_bytes("a thirty-two byte session key!!!"); }

// ---------------------------------------------------------------- keys

TEST(ChannelKeys, MembersSortedAndDeduplicated) {
  const ChannelKeys keys(test_session_key(), 7, {3, 1, 3, 0});
  EXPECT_EQ(keys.members(), (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_TRUE(keys.has_member(0));
  EXPECT_FALSE(keys.has_member(2));
}

TEST(ChannelKeys, EmptyCliqueRejected) {
  EXPECT_THROW(ChannelKeys(test_session_key(), 7, {}), ProtocolError);
}

TEST(ChannelKeys, PerSenderKeysDistinctAndDeterministic) {
  const ChannelKeys a(test_session_key(), 7, {0, 1, 2});
  const ChannelKeys b(test_session_key(), 7, {0, 1, 2});
  EXPECT_EQ(a.record_key(0), b.record_key(0));
  EXPECT_NE(a.record_key(0), a.record_key(1));
  EXPECT_NE(a.record_key(1), a.record_key(2));
  EXPECT_THROW(a.record_key(3), ProtocolError);
}

TEST(ChannelKeys, SessionIdAndMembershipBindTheSchedule) {
  const ChannelKeys base(test_session_key(), 7, {0, 1});
  const ChannelKeys other_sid(test_session_key(), 8, {0, 1});
  const ChannelKeys other_clique(test_session_key(), 7, {0, 1, 2});
  EXPECT_NE(base.record_key(0), other_sid.record_key(0));
  EXPECT_NE(base.record_key(0), other_clique.record_key(0));
}

TEST(ChannelKeys, RatchetIsOneWayAndMoves) {
  const ChannelKeys keys(test_session_key(), 7, {0, 1});
  const Bytes k0 = keys.record_key(0);
  const Bytes k1 = ChannelKeys::ratchet(k0);
  const Bytes k2 = ChannelKeys::ratchet(k1);
  EXPECT_NE(k0, k1);
  EXPECT_NE(k1, k2);
  EXPECT_EQ(ChannelKeys::ratchet(k0), k1);  // deterministic
}

TEST(ChannelKeys, AttachTokensPerPositionAndPerSession) {
  const ChannelKeys keys(test_session_key(), 7, {0, 1});
  const ChannelKeys other(test_session_key(), 9, {0, 1});
  EXPECT_NE(keys.attach_token(0), keys.attach_token(1));
  EXPECT_NE(keys.attach_token(0), other.attach_token(0));
  EXPECT_EQ(keys.attach_token(0).size(), 32u);
}

// ------------------------------------------- deterministic-IV AEAD seal

TEST(AeadDeterministicIv, SealOpenRoundtripWithAad) {
  const crypto::Aead aead(to_bytes("key"));
  const Bytes iv(crypto::Aead::kIvSize, 0x42);
  const Bytes aad = to_bytes("context");
  const Bytes sealed = aead.seal(to_bytes("hello"), iv, aad);
  EXPECT_EQ(Bytes(sealed.begin(), sealed.begin() + crypto::Aead::kIvSize),
            iv);  // IV is embedded verbatim
  EXPECT_EQ(aead.open(sealed, aad), to_bytes("hello"));
}

TEST(AeadDeterministicIv, AadMismatchRejected) {
  const crypto::Aead aead(to_bytes("key"));
  const Bytes iv(crypto::Aead::kIvSize, 1);
  const Bytes sealed = aead.seal(to_bytes("payload"), iv, to_bytes("right"));
  EXPECT_THROW((void)aead.open(sealed, to_bytes("wrong")), VerifyError);
  EXPECT_THROW((void)aead.open(sealed), VerifyError);
}

TEST(AeadDeterministicIv, EmptyAadMatchesLegacySurface) {
  // The aad-less deterministic seal must interoperate with open() exactly
  // like the RNG overload's output: same MAC input layout on the wire.
  const crypto::Aead aead(to_bytes("key"));
  const Bytes iv(crypto::Aead::kIvSize, 7);
  const Bytes sealed = aead.seal(to_bytes("compat"), iv);
  EXPECT_EQ(aead.open(sealed), to_bytes("compat"));
}

TEST(AeadDeterministicIv, WrongIvSizeRejected) {
  const crypto::Aead aead(to_bytes("key"));
  EXPECT_THROW((void)aead.seal(to_bytes("x"), Bytes(15, 0)), VerifyError);
  EXPECT_THROW((void)aead.seal(to_bytes("x"), Bytes(17, 0)), VerifyError);
}

#ifndef NDEBUG
TEST(AeadDeterministicIvDeathTest, DebugBuildAssertsOnIvReuse) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const crypto::Aead aead(to_bytes("key"));
  const Bytes iv(crypto::Aead::kIvSize, 9);
  (void)aead.seal(to_bytes("first"), iv);
  EXPECT_DEATH((void)aead.seal(to_bytes("second"), iv), "IV");
}
#endif

// -------------------------------------------------------------- records

TEST(Record, SealParseOpenRoundtrip) {
  const Bytes key = to_bytes("sender key");
  RecordHeader header;
  header.type = RecordType::kData;
  header.epoch = 3;
  header.seq = 41;
  const service::Frame frame =
      seal_record(key, 7, 2, header, to_bytes("body"));
  EXPECT_TRUE(is_channel_frame(frame));
  EXPECT_EQ(frame.session_id, 7u);
  EXPECT_EQ(frame.position, 2u);

  const auto parsed = parse_record_header(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, RecordType::kData);
  EXPECT_EQ(parsed->epoch, 3u);
  EXPECT_EQ(parsed->seq, 41u);

  const BytesView sealed = BytesView(frame.payload).subspan(kRecordHeaderSize);
  EXPECT_EQ(open_record_body(key, 7, 2, *parsed, sealed), to_bytes("body"));
}

TEST(Record, HeaderBindingIsAuthenticated) {
  const Bytes key = to_bytes("sender key");
  RecordHeader header;
  header.epoch = 1;
  header.seq = 5;
  const service::Frame frame =
      seal_record(key, 7, 2, header, to_bytes("body"));
  const BytesView sealed = BytesView(frame.payload).subspan(kRecordHeaderSize);

  // Wrong session, wrong sender, or a bumped header all fail closed. The
  // header changes also shift the derived IV, which is checked first.
  EXPECT_THROW((void)open_record_body(key, 8, 2, header, sealed),
               VerifyError);
  EXPECT_THROW((void)open_record_body(key, 7, 3, header, sealed),
               VerifyError);
  RecordHeader bumped = header;
  bumped.seq = 6;
  EXPECT_THROW((void)open_record_body(key, 7, 2, bumped, sealed),
               VerifyError);
  RecordHeader retyped = header;
  retyped.type = RecordType::kClose;
  EXPECT_THROW((void)open_record_body(key, 7, 2, retyped, sealed),
               VerifyError);
}

TEST(Record, MalformedFramesParseToNullopt) {
  service::Frame frame;
  frame.session_id = 7;
  frame.round = kChannelRound;
  frame.position = 0;
  frame.payload = Bytes(kMinRecordPayload - 1, 0);
  EXPECT_FALSE(parse_record_header(frame).has_value());  // too short

  frame.payload = Bytes(kMinRecordPayload, 0);
  EXPECT_FALSE(parse_record_header(frame).has_value());  // type byte 0

  frame.payload[0] = 9;
  EXPECT_FALSE(parse_record_header(frame).has_value());  // unknown type

  frame.payload[0] = 1;
  EXPECT_TRUE(parse_record_header(frame).has_value());

  frame.round = 5;  // an ordinary handshake round is not a channel frame
  EXPECT_FALSE(parse_record_header(frame).has_value());
}

TEST(Record, RecordIvLayout) {
  const Bytes iv = record_iv(0x01020304, 0x0a0b0c0d, 0x1122334455667788ull);
  EXPECT_EQ(to_hex(iv), "010203040a0b0c0d1122334455667788");
}

// -------------------------------------------------------------- padding

TEST(Padding, QuantumHidesLength) {
  for (const std::size_t len : {0u, 1u, 250u, 256u, 300u}) {
    const Bytes data(len, 0xab);
    const Bytes padded = pad_payload(data, 256);
    EXPECT_EQ(padded.size() % 256, 0u);
    const auto out = unpad_payload(padded);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
  }
}

TEST(Padding, QuantumZeroAndOneAreTransparent) {
  const Bytes data = to_bytes("abc");
  EXPECT_EQ(pad_payload(data, 0).size(), 4 + data.size());
  EXPECT_EQ(pad_payload(data, 1).size(), 4 + data.size());
}

TEST(Padding, MalformedPaddingRejected) {
  Bytes padded = pad_payload(to_bytes("abc"), 16);
  padded.back() = 1;  // non-zero pad byte
  EXPECT_FALSE(unpad_payload(padded).has_value());

  Bytes overrun = pad_payload(to_bytes("abc"), 0);
  overrun[3] = 200;  // length prefix beyond the buffer
  EXPECT_FALSE(unpad_payload(overrun).has_value());

  EXPECT_FALSE(unpad_payload(Bytes(3, 0)).has_value());  // shorter than u32
}

// -------------------------------------------------------- replay window

TEST(ReplayWindow, InOrderSequence) {
  ReplayWindow w;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    EXPECT_EQ(w.check(seq), ReplayWindow::Verdict::kFresh);
    w.accept(seq);
    EXPECT_EQ(w.check(seq), ReplayWindow::Verdict::kReplayed);
  }
}

TEST(ReplayWindow, ReorderWithinWindowAccepted) {
  ReplayWindow w;
  w.accept(10);
  EXPECT_EQ(w.check(5), ReplayWindow::Verdict::kFresh);
  w.accept(5);
  EXPECT_EQ(w.check(5), ReplayWindow::Verdict::kReplayed);
  EXPECT_EQ(w.check(10), ReplayWindow::Verdict::kReplayed);
  EXPECT_EQ(w.check(7), ReplayWindow::Verdict::kFresh);
}

TEST(ReplayWindow, TooOldFallsOffTheWindow) {
  ReplayWindow w;
  w.accept(100);
  EXPECT_EQ(w.check(100 - ReplayWindow::kWindowSize + 1),
            ReplayWindow::Verdict::kFresh);
  EXPECT_EQ(w.check(100 - ReplayWindow::kWindowSize),
            ReplayWindow::Verdict::kTooOld);
  EXPECT_EQ(w.check(0), ReplayWindow::Verdict::kTooOld);
}

TEST(ReplayWindow, LargeJumpClearsTheBitmap) {
  ReplayWindow w;
  w.accept(0);
  w.accept(1000);
  EXPECT_EQ(w.check(1000), ReplayWindow::Verdict::kReplayed);
  EXPECT_EQ(w.check(999), ReplayWindow::Verdict::kFresh);
  EXPECT_EQ(w.check(0), ReplayWindow::Verdict::kTooOld);
}

TEST(ReplayWindow, ResetForgetsEverything) {
  ReplayWindow w;
  w.accept(50);
  w.reset();
  EXPECT_EQ(w.check(0), ReplayWindow::Verdict::kFresh);
  EXPECT_EQ(w.check(50), ReplayWindow::Verdict::kFresh);
}

// --------------------------------------- frame payload cap (per-instance)

TEST(FramePayloadCap, DefaultStaysOneMebibyte) {
  // Regression pin for the wire contract: the default cap must remain
  // exactly 1 MiB — existing peers depend on it.
  EXPECT_EQ(service::kMaxFramePayload, std::size_t{1} << 20);
  service::Frame frame;
  frame.session_id = 1;
  frame.payload = Bytes(service::kMaxFramePayload, 0);
  const Bytes wire = service::encode_frame(frame);  // at the cap: fine
  frame.payload.push_back(0);
  EXPECT_THROW((void)service::encode_frame(frame), CodecError);

  service::FrameBuffer buf;
  EXPECT_EQ(buf.max_payload(), service::kMaxFramePayload);
  buf.feed(wire);
  ASSERT_TRUE(buf.next().has_value());
}

TEST(FramePayloadCap, PerInstanceCapIsEnforced) {
  service::Frame frame;
  frame.session_id = 1;
  frame.payload = Bytes(100, 0xcd);
  const Bytes wire = service::encode_frame(frame, /*max_payload=*/128);
  EXPECT_THROW((void)service::encode_frame(frame, 99), CodecError);

  service::FrameBuffer small(service::kDefaultMaxBuffered, 99);
  EXPECT_THROW(
      {
        small.feed(wire);
        (void)small.next();
      },
      CodecError);

  service::FrameBuffer fits(service::kDefaultMaxBuffered, 128);
  fits.feed(wire);
  const auto out = fits.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, frame.payload);

  EXPECT_EQ(service::decode_frame(wire, 128).payload, frame.payload);
  EXPECT_THROW((void)service::decode_frame(wire, 99), CodecError);
}

TEST(FramePayloadCap, RaisedCapCarriesBulkRecords) {
  const std::size_t big = (std::size_t{1} << 20) + 4096;
  service::Frame frame;
  frame.session_id = 2;
  frame.payload = Bytes(big, 0x5a);
  const Bytes wire = service::encode_frame(frame, big);
  service::FrameBuffer buf(2 * (4 + service::kFrameHeaderSize + big), big);
  buf.feed(wire);
  const auto out = buf.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload.size(), big);
}

}  // namespace
}  // namespace shs::channel
