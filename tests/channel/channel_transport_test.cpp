// End-to-end encrypted group channel over the sharded TCP transport:
// an m=4 handshake hosted by the server completes, every member derives
// the record keys from the serial-twin session key (the transport never
// ships key material), attaches to the session's relay channel with its
// HMAC token, and sustains bidirectional encrypted traffic with
// byte-exact plaintext recovery at every member — across {1, 2, 4}
// shards. Adversarial records injected through an attached connection
// (tamper, replay, cross-epoch) are relayed blind by the hub but
// rejected and counted by every receiving endpoint; bad attach tokens
// and unattached senders are stopped at the hub itself; the channel
// counters surface in the metrics JSON, the Prometheus exposition and
// the trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "channel/endpoint.h"
#include "channel/keys.h"
#include "channel/record.h"
#include "fixture.h"
#include "obs/trace.h"
#include "shard_fixture.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

using testing::group_factory;
using testing::make_request;
using testing::serial_twin;
using testing::shard_eventually;
using channel::ChannelEndpoint;
using channel::ChannelKeys;
using channel::RecordResult;
using channel::RecordVerdict;
using channel::RejectReason;

constexpr std::uint32_t kM = 4;

ClientOptions client_for(const TransportServer& server) {
  ClientOptions options;
  options.port = server.port();
  return options;
}

/// Next channel record on this client's socket (attach may have stashed
/// earlier arrivals in the inbox — drain that first).
service::Frame next_record(Client& client,
                           std::vector<service::Frame>& inbox) {
  if (inbox.empty()) {
    for (auto& f : client.take_records()) inbox.push_back(std::move(f));
  }
  while (inbox.empty()) {
    auto frame = client.recv_frame();
    if (!frame.has_value()) {
      throw TransportError("server closed while awaiting a record");
    }
    if (channel::is_channel_frame(*frame)) {
      inbox.push_back(std::move(*frame));
    }
  }
  service::Frame out = std::move(inbox.front());
  inbox.erase(inbox.begin());
  return out;
}

bool has_trace(const std::vector<obs::TraceRecord>& records,
               obs::TraceEvent type) {
  for (const auto& r : records) {
    if (r.type == type) return true;
  }
  return false;
}

/// One full scenario at a given shard count. Everything lives in here so
/// the {1,2,4} sweep runs it against a fresh server each time.
void run_channel_scenario(std::size_t shards) {
  obs::TraceOptions to;
  to.capacity = 1 << 12;
  obs::TraceRecorder trace(to);
  ServerOptions so;
  so.num_shards = shards;
  service::ServiceOptions svc;
  svc.trace = &trace;
  TransportServer server(so, svc, group_factory());
  server.start();
  ASSERT_GT(server.port(), 0);

  // The handshake: hosted on the server, driven by one relay client.
  const OpenRequest request =
      make_request(kM, false, "chan-e2e-" + std::to_string(shards));
  Client opener(client_for(server));
  opener.connect();
  const std::uint64_t sid = opener.open(request);
  (void)opener.run();

  // Key recovery is client-side and deterministic: the serial twin of the
  // same credentials+seed yields the byte-identical session key, so no
  // secret ever crosses the transport.
  const auto want = serial_twin(request);
  ASSERT_TRUE(want[0].full_success);
  const ChannelKeys keys(want[0].session_key, sid,
                         want[0].clique_positions());
  ASSERT_EQ(keys.members().size(), kM);

  // Every member attaches its own connection with its own token.
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<ChannelEndpoint> endpoints;
  std::vector<std::vector<service::Frame>> inboxes(kM);
  for (std::uint32_t p = 0; p < kM; ++p) {
    clients.push_back(std::make_unique<Client>(client_for(server)));
    clients[p]->connect();
    const AttachInfo info = clients[p]->attach(sid, p, keys.attach_token(p));
    EXPECT_EQ(info.session_id, sid);
    EXPECT_EQ(info.members, keys.members());
    endpoints.emplace_back(keys, p);
  }

  // A forged token and an unknown session are stopped at the hub.
  {
    Client intruder(client_for(server));
    intruder.connect();
    EXPECT_THROW((void)intruder.attach(sid, 0, Bytes(32, 0xee)),
                 ProtocolError);
    EXPECT_THROW(
        (void)intruder.attach(sid + 1000, 0, keys.attach_token(0)),
        ProtocolError);
    // Attaching an already-bound position from another socket fails too.
    EXPECT_THROW((void)intruder.attach(sid, 1, keys.attach_token(1)),
                 ProtocolError);
  }

  // Bidirectional sweep: every member broadcasts every round; every other
  // member recovers the exact plaintext.
  auto relay_round = [&](std::uint32_t sender,
                         const std::vector<service::Frame>& frames,
                         const Bytes& expected) {
    for (const auto& frame : frames) clients[sender]->send_frame(frame);
    for (std::uint32_t r = 0; r < kM; ++r) {
      if (r == sender) continue;
      Bytes delivered;
      bool got_data = false;
      for (std::size_t k = 0; k < frames.size(); ++k) {
        const RecordResult res =
            endpoints[r].open(next_record(*clients[r], inboxes[r]));
        ASSERT_NE(res.verdict, RecordVerdict::kRejected)
            << "receiver " << r << ": " << to_string(res.reason);
        if (res.verdict == RecordVerdict::kDelivered) {
          delivered = res.plaintext;
          got_data = true;
          EXPECT_EQ(res.sender, sender);
        }
      }
      ASSERT_TRUE(got_data) << "receiver " << r;
      EXPECT_EQ(delivered, expected) << "receiver " << r;
    }
  };

  service::Frame epoch0_record;  // kept for the cross-epoch probe
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t s = 0; s < kM; ++s) {
      const Bytes msg = to_bytes("shards " + std::to_string(shards) +
                                 " round " + std::to_string(round) +
                                 " from " + std::to_string(s));
      const auto frames = endpoints[s].send(msg);
      if (s == 0 && round == 0) epoch0_record = frames.back();
      relay_round(s, frames, msg);
    }
  }

  // Explicit rekey propagates: everyone ratchets, traffic keeps flowing.
  {
    const service::Frame rekey = endpoints[0].rekey();
    clients[0]->send_frame(rekey);
    for (std::uint32_t r = 1; r < kM; ++r) {
      const RecordResult res =
          endpoints[r].open(next_record(*clients[r], inboxes[r]));
      EXPECT_EQ(res.verdict, RecordVerdict::kRekeyed);
    }
    const Bytes msg = to_bytes("fresh epoch");
    relay_round(0, endpoints[0].send(msg), msg);
  }

  // Adversary 1 — tamper: a flipped ciphertext byte is relayed blind but
  // rejected by every endpoint; nothing is delivered.
  {
    const auto frames = endpoints[1].send(to_bytes("to be bent"));
    service::Frame bent = frames.back();
    bent.payload.back() ^= 0x01;
    clients[1]->send_frame(bent);
    for (std::uint32_t r = 0; r < kM; ++r) {
      if (r == 1) continue;
      const RecordResult res =
          endpoints[r].open(next_record(*clients[r], inboxes[r]));
      EXPECT_EQ(res.verdict, RecordVerdict::kRejected);
      EXPECT_EQ(res.reason, RejectReason::kAuthFailed);
      EXPECT_TRUE(res.plaintext.empty());
    }
  }

  // Adversary 2 — replay: the genuine record delivers once, its replay is
  // rejected by the per-sender window.
  {
    const auto frames = endpoints[1].send(to_bytes("replay me"));
    relay_round(1, frames, to_bytes("replay me"));
    clients[1]->send_frame(frames.back());
    for (std::uint32_t r = 0; r < kM; ++r) {
      if (r == 1) continue;
      const RecordResult res =
          endpoints[r].open(next_record(*clients[r], inboxes[r]));
      EXPECT_EQ(res.verdict, RecordVerdict::kRejected);
      EXPECT_EQ(res.reason, RejectReason::kReplayed);
    }
  }

  // Adversary 3 — cross-epoch: sender 0 is two epochs past its round-0
  // record; the retired key never decrypts anything again.
  {
    const service::Frame rekey = endpoints[0].rekey();
    clients[0]->send_frame(rekey);
    for (std::uint32_t r = 1; r < kM; ++r) {
      EXPECT_EQ(
          endpoints[r].open(next_record(*clients[r], inboxes[r])).verdict,
          RecordVerdict::kRekeyed);
    }
    clients[0]->send_frame(epoch0_record);
    for (std::uint32_t r = 1; r < kM; ++r) {
      const RecordResult res =
          endpoints[r].open(next_record(*clients[r], inboxes[r]));
      EXPECT_EQ(res.verdict, RecordVerdict::kRejected);
      EXPECT_EQ(res.reason, RejectReason::kStaleEpoch);
    }
  }

  // Adversary 4 — an attached client speaking for a position it does not
  // own is dropped at the hub (counted, never fanned out).
  {
    const auto frames = endpoints[2].send(to_bytes("forged"));
    relay_round(2, frames, to_bytes("forged"));  // the honest copy flows
    service::Frame forged = frames[0];
    forged.position = 3;  // not clients[2]'s binding
    clients[2]->send_frame(forged);
    EXPECT_TRUE(shard_eventually([&] {
      return server.metrics_json().find("\"records_unowned\": 0") ==
             std::string::npos;
    })) << "the forged record was never counted as unowned";
  }

  // Observability: all three surfaces carry the channel.
  const std::string json = server.metrics_json();
  EXPECT_NE(json.find("\"channel\": {"), std::string::npos);
  EXPECT_NE(json.find("\"rekeys\": 2"), std::string::npos) << json;
  const std::string prom = server.metrics_prometheus();
  EXPECT_NE(prom.find("shs_channels_opened_total"), std::string::npos);
  EXPECT_NE(prom.find("shs_channel_records_in_total"), std::string::npos);
  EXPECT_NE(prom.find("shs_channel_rekeys_total 2"), std::string::npos);
  if (shards > 1) {
    EXPECT_NE(prom.find("shs_shard_channels_open"), std::string::npos);
    EXPECT_NE(prom.find("shs_shard_channel_records_in_total"),
              std::string::npos);
  }
  const auto records = trace.snapshot();
  EXPECT_TRUE(has_trace(records, obs::TraceEvent::kChannelRecord));
  EXPECT_TRUE(has_trace(records, obs::TraceEvent::kRekey));

  // Graceful close: every member detaches; the channel dies with the last
  // one and the open-channels gauge drains to zero.
  for (std::uint32_t p = 0; p < kM; ++p) clients[p]->detach(sid, p);
  EXPECT_TRUE(shard_eventually([&] {
    return server.metrics_prometheus().find("shs_channels_open 0") !=
           std::string::npos;
  })) << "channel did not close after the last detach";
  {
    Client late(client_for(server));
    late.connect();
    EXPECT_THROW((void)late.attach(sid, 0, keys.attach_token(0)),
                 ProtocolError);  // the channel is gone
  }

  server.shutdown();
}

TEST(ChannelTransport, OneShard) { run_channel_scenario(1); }
TEST(ChannelTransport, TwoShards) { run_channel_scenario(2); }
TEST(ChannelTransport, FourShards) { run_channel_scenario(4); }

}  // namespace
}  // namespace shs::transport
