// Redaction conformance at the record layer, mirroring the PR-5 sweep:
// channel key material (base key, attach key, per-sender record keys and
// every ratcheted successor) registers with the process RedactionAudit,
// the full diagnostics stack runs over live channel traffic, and no
// surface may carry any of it raw or hex-encoded. The negative control
// proves the scanner sees channel keys at all: a deliberately hexed
// record key through a log line IS flagged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "channel/endpoint.h"
#include "channel/keys.h"
#include "common/bytes.h"
#include "obs/log.h"
#include "obs/redact.h"
#include "obs/trace.h"

namespace shs::channel {
namespace {

using obs::RedactionAudit;

Bytes session_key() { return to_bytes("a thirty-two byte session key!!!"); }

struct AuditGuard {
  AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(true);
  }
  ~AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(false);
  }
};

std::string violation_summary() {
  std::string out;
  for (const auto& v : RedactionAudit::instance().violation_log()) {
    out += "\n  " + v.label + " (" + v.encoding + ") leaked into " + v.surface;
  }
  return out;
}

// Live channel traffic with every diagnostics surface enabled — debug
// logging of record metadata (what the transport hub logs), channel trace
// records, and the trace export — must leave zero trace of any channel
// key. Rekeys ratchet fresh keys mid-sweep so the registry grows while
// the surfaces are hot; tampered records exercise the reject logging too.
TEST(ChannelRedaction, TrafficSweepLeaksNothingOnAnySurface) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();

  obs::TraceOptions to;
  to.capacity = 1 << 10;
  obs::TraceRecorder trace(to);
  obs::CaptureSink sink;
  obs::Logger::Options lo;
  lo.level = obs::LogLevel::kDebug;
  lo.sink = &sink;
  obs::Logger logger(lo);

  ChannelOptions options;
  options.rekey_after_records = 8;  // several ratchets inside the sweep
  options.pad_quantum = 64;
  const ChannelKeys keys(session_key(), 42, {0, 1, 2, 3});
  std::vector<ChannelEndpoint> members;
  for (std::uint32_t p = 0; p < 4; ++p) members.emplace_back(keys, p, options);

  for (int round = 0; round < 12; ++round) {
    for (std::uint32_t s = 0; s < 4; ++s) {
      const Bytes msg = to_bytes("round " + std::to_string(round));
      for (const auto& frame : members[s].send(msg)) {
        // What the relay hub records per record: coordinates and sizes.
        trace.record(obs::TraceEvent::kChannelRecord, frame.session_id, s,
                     frame.payload.size());
        logger.debug("channel", "record relayed")
            .u64("sid", frame.session_id)
            .u64("sender", s)
            .u64("bytes", frame.payload.size())
            .bytes("payload", frame.payload);
        service::Frame bent = frame;
        bent.payload[round % bent.payload.size()] ^= 0x80;
        for (std::uint32_t r = 0; r < 4; ++r) {
          if (r == s) continue;
          const RecordResult good = members[r].open(frame);
          EXPECT_NE(good.verdict, RecordVerdict::kRejected);
          if (good.verdict == RecordVerdict::kRekeyed) {
            trace.record(obs::TraceEvent::kRekey, frame.session_id, s, 0);
          }
          const RecordResult bad = members[r].open(bent);
          EXPECT_EQ(bad.verdict, RecordVerdict::kRejected);
          logger.debug("channel", "record rejected")
              .u64("sender", bad.sender)
              .str("reason", to_string(bad.reason));
        }
      }
    }
  }
  EXPECT_GT(members[0].send_epoch(), 0u) << "no rekey ran — sweep too small";

  (void)trace.to_chrome_json();  // audits itself as "trace"
  obs::audit_output(sink.joined(), "log_export");

  EXPECT_GT(audit.secret_count(), 0u)
      << "no channel key ever registered — the sweep audited nothing";
  EXPECT_EQ(audit.violations(), 0u) << violation_summary();
  EXPECT_GT(logger.emitted(), 0u);
}

// The negative control (mirrors the PR-5 session-key leak test): a
// deliberately hexed record key through a log line is caught on the same
// surface by the same scanner, so the zero above is a real verdict.
TEST(ChannelRedaction, DeliberateLeakOfRecordKeyIsCaught) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();

  const ChannelKeys keys(session_key(), 42, {0, 1});
  const Bytes record_key = keys.record_key(0);
  ASSERT_GE(record_key.size(), RedactionAudit::kMinSecretBytes);
  ASSERT_EQ(audit.violations(), 0u);

  obs::CaptureSink sink;
  obs::Logger::Options lo;
  lo.sink = &sink;
  obs::Logger logger(lo);
  logger.info("channel", "leaking on purpose")
      .str("key_hex", to_hex(record_key));
  ASSERT_GE(audit.violations(), 1u)
      << "the audit missed a hexed record key — the sweep above proves "
         "nothing";
  EXPECT_EQ(audit.violation_log()[0].surface, "log");

  // Ratcheted successors are registered too: leaking the *next* epoch's
  // key is caught the same way.
  const Bytes next = ChannelKeys::ratchet(record_key);
  audit.check("surface carrying " + to_hex(next), "trace");
  EXPECT_GE(audit.violations(), 2u);
}

}  // namespace
}  // namespace shs::channel
