// Fault-library unit tests: each adversary in src/net/{adversary,faults}
// in isolation (seed determinism, logging, combinator semantics), plus
// the driver-contract regression promised by DriverOptions: a stateful
// adversary observes the same interception sequence at every thread
// count.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "bigint/random.h"
#include "net/adversary.h"
#include "net/faults.h"

namespace shs::net {
namespace {

Bytes payload(std::size_t n, std::uint8_t fill = 0xab) {
  return Bytes(n, fill);
}

// ------------------------------------------------------------- FaultLog

TEST(FaultLog, CountsAndSummarizesByKind) {
  FaultLog log;
  log.record(0, 1, 2, FaultKind::kDrop, "a");
  log.record(1, 0, 2, FaultKind::kDrop, "b");
  log.record(1, 1, 0, FaultKind::kTamper);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(FaultKind::kDrop), 2u);
  EXPECT_EQ(log.count(FaultKind::kTamper), 1u);
  EXPECT_EQ(log.count(FaultKind::kReplay), 0u);
  EXPECT_EQ(log.summary(), "drop x2 tamper x1");
  EXPECT_EQ(FaultLog{}.summary(), "no faults");
}

// ---------------------------------------------------------- combinators

class StampAdversary final : public Adversary {
 public:
  explicit StampAdversary(std::uint8_t stamp) : stamp_(stamp) {}
  std::optional<Bytes> intercept(std::size_t, std::size_t, std::size_t,
                                 const Bytes& in) override {
    Bytes out = in;
    out.push_back(stamp_);
    return out;
  }

 private:
  std::uint8_t stamp_;
};

class NullAdversary final : public Adversary {
 public:
  std::optional<Bytes> intercept(std::size_t, std::size_t, std::size_t,
                                 const Bytes&) override {
    ++calls;
    return std::nullopt;
  }
  std::size_t calls = 0;
};

TEST(ChainAdversary, AppliesLinksInOrder) {
  StampAdversary first(1), second(2);
  ChainAdversary chain;
  chain.add(&first);
  chain.add(&second);
  const auto out = chain.intercept(0, 0, 0, payload(1));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Bytes{0xab, 1, 2}));
}

TEST(ChainAdversary, DropShortCircuitsLaterLinks) {
  NullAdversary sink;
  StampAdversary after(9);
  ChainAdversary chain;
  chain.add(&sink);
  chain.add(&after);
  EXPECT_FALSE(chain.intercept(0, 0, 0, payload(1)).has_value());
  EXPECT_EQ(sink.calls, 1u);
}

TEST(ChainAdversary, OwnsLinksAddedByUniquePtr) {
  ChainAdversary chain;
  chain.add(std::make_unique<StampAdversary>(7));
  const auto out = chain.intercept(0, 0, 0, payload(1));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->back(), 7);
}

TEST(ScheduledAdversary, GateHidesEdgesFromTheInnerAdversary) {
  NullAdversary sink;
  ScheduledAdversary gated(&sink, ScheduledAdversary::from_round(2));
  EXPECT_TRUE(gated.intercept(1, 0, 0, payload(1)).has_value());
  EXPECT_EQ(sink.calls, 0u);  // never observed the round-1 edge
  EXPECT_FALSE(gated.intercept(2, 0, 0, payload(1)).has_value());
  EXPECT_EQ(sink.calls, 1u);
}

TEST(ScheduledAdversary, SenderPredicateAndOwningConstructor) {
  ScheduledAdversary gated(std::make_unique<NullAdversary>(),
                           ScheduledAdversary::sender_is(3));
  EXPECT_TRUE(gated.intercept(0, 2, 0, payload(1)).has_value());
  EXPECT_FALSE(gated.intercept(0, 3, 0, payload(1)).has_value());
}

// --------------------------------------------------------------- faults

TEST(DropFault, DecisionsAreSeedDeterministicAndEdgeKeyed) {
  const DropFault::Config config{0.3, 0.0, 0.0};
  DropFault a(42, config);
  DropFault b(42, config);
  // Same seed: identical decisions, whatever order edges are presented in.
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_EQ(a.intercept(round, s, r, payload(8)).has_value(),
                  b.intercept(round, s, r, payload(8)).has_value());
      }
    }
  }
}

TEST(DropFault, SeveredLinkStaysSeveredAcrossRounds) {
  FaultLog log;
  DropFault fault(7, DropFault::Config{0.0, 0.0, 0.5}, &log);
  // Link decisions ignore the round: each (sender, receiver) pair is
  // either always cut or never cut.
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t r = 0; r < 4; ++r) {
      const bool round0 = fault.intercept(0, s, r, payload(8)).has_value();
      for (std::size_t round = 1; round < 5; ++round) {
        EXPECT_EQ(fault.intercept(round, s, r, payload(8)).has_value(),
                  round0);
      }
    }
  }
  EXPECT_GT(log.count(FaultKind::kDrop), 0u);
}

TEST(DropFault, EmptyPayloadsPassUntouched) {
  DropFault fault(7, DropFault::Config{1.0, 1.0, 1.0});
  const auto out = fault.intercept(0, 0, 1, Bytes{});
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(TamperFault, BitFlipChangesExactlyOneBit) {
  FaultLog log;
  TamperFault fault(3, TamperFault::Config{1.0, TamperFault::Mode::kBitFlip},
                    &log);
  const Bytes in = payload(32);
  const auto out = fault.intercept(0, 0, 1, in);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), in.size());
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    std::uint8_t diff = (*out)[i] ^ in[i];
    while (diff != 0) {
      flipped += diff & 1u;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 1u);
  EXPECT_EQ(log.count(FaultKind::kTamper), 1u);
}

TEST(TamperFault, TruncateAndExtendChangeTheSize) {
  TamperFault shrink(3, TamperFault::Config{1.0, TamperFault::Mode::kTruncate});
  const auto small = shrink.intercept(0, 0, 1, payload(32));
  ASSERT_TRUE(small.has_value());
  EXPECT_LT(small->size(), 32u);

  TamperFault grow(3, TamperFault::Config{1.0, TamperFault::Mode::kExtend});
  const auto big = grow.intercept(0, 0, 1, payload(32));
  ASSERT_TRUE(big.has_value());
  EXPECT_GT(big->size(), 32u);
  EXPECT_TRUE(std::equal(big->begin(), big->begin() + 32,
                         payload(32).begin()));  // prefix preserved
}

TEST(TamperFault, MutationIsDeterministicPerSeedAndEdge) {
  TamperFault a(11, TamperFault::Config{1.0, TamperFault::Mode::kMix});
  TamperFault b(11, TamperFault::Config{1.0, TamperFault::Mode::kMix});
  TamperFault other(12, TamperFault::Config{1.0, TamperFault::Mode::kMix});
  const Bytes in = payload(64);
  EXPECT_EQ(a.intercept(2, 1, 3, in), b.intercept(2, 1, 3, in));
  EXPECT_NE(a.intercept(2, 1, 3, in), other.intercept(2, 1, 3, in));
}

TEST(ReplayFault, CrossRoundSubstitutesTheMostRecentEarlierPayload) {
  FaultLog log;
  ReplayFault fault(5, ReplayFault::Config{1.0, 0.0}, &log);
  const Bytes r0 = payload(8, 0x01);
  const Bytes r1 = payload(8, 0x02);
  // Round 0 has no earlier material: passes through (and is recorded).
  EXPECT_EQ(fault.intercept(0, 0, 1, r0), r0);
  // Round 1: replaced by the sender's round-0 payload.
  EXPECT_EQ(fault.intercept(1, 0, 1, r1), r0);
  // A different sender with no history passes through.
  EXPECT_EQ(fault.intercept(1, 1, 0, r1), r1);
  EXPECT_EQ(log.count(FaultKind::kReplay), 1u);
}

TEST(ReplayFault, CrossSessionSubstitutesTheLoadedSlot) {
  ReplayFault fault(5, ReplayFault::Config{0.0, 1.0});
  fault.load_session({{1, 0, payload(8, 0x77)}});
  // Matching (round, sender) slot: replaced by the foreign payload.
  EXPECT_EQ(fault.intercept(1, 0, 2, payload(8, 0x02)), payload(8, 0x77));
  // No foreign slot for this (round, sender): passes through.
  EXPECT_EQ(fault.intercept(1, 1, 2, payload(8, 0x02)), payload(8, 0x02));
}

TEST(ReorderDelayFault, HoldsTheSlotAndReinjectsItLater) {
  FaultLog log;
  ReorderDelayFault fault(ReorderDelayFault::Config{1, 0, 2}, &log);
  const Bytes held = payload(8, 0x11);
  EXPECT_EQ(fault.intercept(0, 0, 1, payload(8, 0x10)), payload(8, 0x10));
  EXPECT_FALSE(fault.intercept(1, 0, 1, held).has_value());  // held back
  EXPECT_EQ(fault.intercept(2, 0, 1, payload(8, 0x12)), payload(8, 0x12));
  EXPECT_EQ(fault.intercept(3, 0, 1, payload(8, 0x13)), held);  // re-injected
  // Other senders are untouched throughout.
  EXPECT_EQ(fault.intercept(1, 1, 0, payload(8, 0x20)), payload(8, 0x20));
  EXPECT_EQ(log.count(FaultKind::kDelay), 1u);
  EXPECT_EQ(log.count(FaultKind::kInject), 1u);
}

TEST(PartitionFault, CutsExactlyCrossCellEdges) {
  FaultLog log;
  PartitionFault fault = PartitionFault::split_halves(4, &log);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t r = 0; r < 4; ++r) {
      const bool same_cell = (s < 2) == (r < 2);
      EXPECT_EQ(fault.intercept(0, s, r, payload(4)).has_value(), same_cell)
          << s << " -> " << r;
    }
  }
  EXPECT_EQ(log.count(FaultKind::kPartition), 8u);
}

// ----------------------------------------------------- ByzantineInsider

class ConstantParty final : public RoundParty {
 public:
  explicit ConstantParty(std::size_t rounds) : rounds_(rounds) {}
  std::size_t total_rounds() const override { return rounds_; }
  Bytes round_message(std::size_t round) override {
    return {static_cast<std::uint8_t>(round), 0xaa, 0xbb, 0xcc};
  }
  void deliver(std::size_t round, const std::vector<Bytes>& msgs) override {
    delivered.push_back({round, msgs});
  }
  std::vector<std::pair<std::size_t, std::vector<Bytes>>> delivered;

 private:
  std::size_t rounds_;
};

TEST(ByzantineInsider, ScriptActionsDeviatePerRound) {
  ConstantParty inner(5);
  FaultLog log;
  ByzantineInsider insider(
      &inner, /*position=*/2, /*seed=*/9,
      {ByzantineInsider::Action::kFollow, ByzantineInsider::Action::kSilent,
       ByzantineInsider::Action::kRandom, ByzantineInsider::Action::kFlipBit},
      &log);

  EXPECT_EQ(insider.total_rounds(), 5u);
  EXPECT_EQ(insider.round_message(0), inner.round_message(0));  // kFollow
  EXPECT_TRUE(insider.round_message(1).empty());                // kSilent
  const Bytes junk = insider.round_message(2);                  // kRandom
  EXPECT_EQ(junk.size(), inner.round_message(2).size());
  EXPECT_NE(junk, inner.round_message(2));
  const Bytes flipped = insider.round_message(3);               // kFlipBit
  EXPECT_EQ(flipped.size(), 4u);
  EXPECT_NE(flipped, inner.round_message(3));
  // Beyond the script: honest again.
  EXPECT_EQ(insider.round_message(4), inner.round_message(4));
  EXPECT_EQ(log.count(FaultKind::kByzantine), 3u);

  // Deliveries are forwarded untouched.
  insider.deliver(0, {payload(1)});
  ASSERT_EQ(inner.delivered.size(), 1u);
}

TEST(ByzantineInsider, ReplayOwnRebroadcastsThePreviousMessage) {
  ConstantParty inner(3);
  ByzantineInsider insider(&inner, 0, 1,
                           {ByzantineInsider::Action::kFollow,
                            ByzantineInsider::Action::kReplayOwn});
  const Bytes first = insider.round_message(0);
  EXPECT_EQ(insider.round_message(1), first);
}

// ------------------------------------------------------- wire recording

TEST(RecordingAdversary, CapturesOneSlotPerRoundAndSender) {
  RecordingAdversary tap(/*observe_receiver=*/1);
  (void)tap.intercept(0, 0, 0, payload(4));  // other receiver: not recorded
  (void)tap.intercept(0, 0, 1, payload(4));
  (void)tap.intercept(0, 2, 1, payload(6));
  (void)tap.intercept(1, 0, 1, payload(2));
  ASSERT_EQ(tap.records().size(), 3u);
  const auto shape = wire_shape(tap.records());
  const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>
      expected = {{0, 0, 4}, {0, 2, 6}, {1, 0, 2}};
  EXPECT_EQ(shape, expected);
}

// ------------------------------------------- driver-contract regression

/// Stateful adversary whose behaviour depends on its own interception
/// history: every edge gets stamped with a running counter, and the
/// sequence of observed (round, sender, receiver) triples is recorded.
class SequenceStampingAdversary final : public Adversary {
 public:
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& in) override {
    order.push_back({round, sender, receiver});
    Bytes out = in;
    out.push_back(static_cast<std::uint8_t>(order.size() & 0xff));
    return out;
  }
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> order;
};

TEST(Protocol, StatefulAdversarySeesDeterministicOrderAcrossThreadCounts) {
  // The DriverOptions contract: with an adversary installed, delivery is
  // serialized one edge at a time in receiver-major order, so a stateful
  // adversary observes an identical interception sequence — and produces
  // identical per-receiver views — at every thread count.
  constexpr std::size_t kM = 5;
  constexpr std::size_t kRounds = 4;
  auto run = [&](std::size_t threads) {
    std::vector<ConstantParty> parties(kM, ConstantParty(kRounds));
    std::vector<RoundParty*> ptrs;
    for (auto& p : parties) ptrs.push_back(&p);
    SequenceStampingAdversary adv;
    num::TestRng shuffle(99);  // same seed: same receiver permutation
    DriverOptions options;
    options.threads = threads;
    (void)run_protocol(ptrs, &adv, &shuffle, options);
    std::vector<std::vector<Bytes>> views;
    for (const auto& p : parties) {
      for (const auto& [round, msgs] : p.delivered) views.push_back(msgs);
    }
    return std::make_pair(adv.order, views);
  };

  const auto serial = run(1);
  ASSERT_EQ(serial.first.size(), kM * kM * kRounds);
  for (std::size_t threads : {2, 4, 8}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first)
        << "interception order diverged at threads=" << threads;
    EXPECT_EQ(parallel.second, serial.second)
        << "delivered views diverged at threads=" << threads;
  }

  // And within each round the order really is receiver-major: sender
  // strictly ascends 0..m-1 inside each receiver block.
  for (std::size_t i = 0; i < serial.first.size(); ++i) {
    EXPECT_EQ(std::get<1>(serial.first[i]), i % kM);
    if (i % kM != 0) {
      EXPECT_EQ(std::get<2>(serial.first[i]), std::get<2>(serial.first[i - 1]));
    }
  }
}

}  // namespace
}  // namespace shs::net
