// Round-engine substrate tests: delivery semantics, adversary hooks
// (tamper/drop/per-receiver views), shuffled delivery, stats, and the
// protocol-shape error paths.
#include <gtest/gtest.h>

#include "bigint/random.h"
#include "common/errors.h"
#include "net/protocol.h"

namespace shs::net {
namespace {

// Echo party: broadcasts its position+round, records everything it sees.
class EchoParty final : public RoundParty {
 public:
  EchoParty(std::size_t position, std::size_t rounds)
      : position_(position), rounds_(rounds) {}

  [[nodiscard]] std::size_t total_rounds() const override { return rounds_; }

  Bytes round_message(std::size_t round) override {
    return {static_cast<std::uint8_t>(position_),
            static_cast<std::uint8_t>(round)};
  }

  void deliver(std::size_t round, const std::vector<Bytes>& msgs) override {
    seen.push_back({round, msgs});
  }

  std::vector<std::pair<std::size_t, std::vector<Bytes>>> seen;

 private:
  std::size_t position_;
  std::size_t rounds_;
};

TEST(Protocol, DeliversEveryMessageToEveryParty) {
  EchoParty a(0, 3), b(1, 3), c(2, 3);
  RoundParty* parties[] = {&a, &b, &c};
  const RunStats stats = run_protocol(parties);
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.messages, 9u);
  EXPECT_EQ(stats.bytes_on_wire, 18u);
  for (const EchoParty* p : {&a, &b, &c}) {
    ASSERT_EQ(p->seen.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(p->seen[r].first, r);
      ASSERT_EQ(p->seen[r].second.size(), 3u);
      for (std::size_t s = 0; s < 3; ++s) {
        EXPECT_EQ(p->seen[r].second[s], (Bytes{static_cast<std::uint8_t>(s),
                                               static_cast<std::uint8_t>(r)}));
      }
    }
  }
}

class DropAdversary final : public Adversary {
 public:
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& payload) override {
    if (round == 1 && sender == 0 && receiver == 2) return std::nullopt;
    return payload;
  }
};

TEST(Protocol, AdversaryCanDropPerReceiver) {
  EchoParty a(0, 2), b(1, 2), c(2, 2);
  RoundParty* parties[] = {&a, &b, &c};
  DropAdversary adv;
  (void)run_protocol(parties, &adv);
  // Receiver 2, round 1, sender 0: empty; everyone else unaffected.
  EXPECT_TRUE(c.seen[1].second[0].empty());
  EXPECT_FALSE(b.seen[1].second[0].empty());
  EXPECT_FALSE(c.seen[0].second[0].empty());
}

class FlipAdversary final : public Adversary {
 public:
  std::optional<Bytes> intercept(std::size_t, std::size_t, std::size_t,
                                 const Bytes& payload) override {
    Bytes out = payload;
    if (!out.empty()) out[0] ^= 0xff;
    return out;
  }
};

TEST(Protocol, AdversaryTamperingIsPerReceiverView) {
  EchoParty a(0, 1), b(1, 1);
  RoundParty* parties[] = {&a, &b};
  FlipAdversary adv;
  (void)run_protocol(parties, &adv);
  // Both receivers see flipped first bytes; original senders unaffected
  // in their own buffers (messages are copied per view).
  EXPECT_EQ(a.seen[0].second[0][0], 0xff);
  EXPECT_EQ(b.seen[0].second[1][0], 0xfe);
}

TEST(Protocol, ShuffledDeliveryStillDeliversEverything) {
  EchoParty a(0, 2), b(1, 2), c(2, 2), d(3, 2);
  RoundParty* parties[] = {&a, &b, &c, &d};
  num::TestRng shuffle(7);
  (void)run_protocol(parties, nullptr, &shuffle);
  for (const EchoParty* p : {&a, &b, &c, &d}) {
    EXPECT_EQ(p->seen.size(), 2u);
    EXPECT_EQ(p->seen[0].second.size(), 4u);
  }
}

TEST(Protocol, EmptyMessagesAreNotCounted) {
  class QuietParty final : public RoundParty {
   public:
    std::size_t total_rounds() const override { return 1; }
    Bytes round_message(std::size_t) override { return {}; }
    void deliver(std::size_t, const std::vector<Bytes>&) override {}
  };
  QuietParty a, b;
  RoundParty* parties[] = {&a, &b};
  const RunStats stats = run_protocol(parties);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.bytes_on_wire, 0u);
}

TEST(Protocol, RejectsMalformedSetups) {
  EXPECT_THROW((void)run_protocol({}), ProtocolError);
  EchoParty a(0, 2), b(1, 3);  // disagree on rounds
  RoundParty* parties[] = {&a, &b};
  EXPECT_THROW((void)run_protocol(parties), ProtocolError);
}

}  // namespace
}  // namespace shs::net
