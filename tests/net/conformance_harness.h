// Security-invariant conformance harness.
//
// Turns the paper's security claims (§2, §7) into executable invariants:
// scenarios pair a handshake configuration (m, scheme, driver) with a
// seeded adversary schedule built from the src/net fault library, run
// deterministically, and are then checked against the properties the
// paper promises:
//
//   * no false accept      — no participant ever confirms a position that
//                            is not a same-group member behaving as one
//   * indistinguishability — failing and succeeding sessions of the same
//                            shape parameters have identical wire shapes
//   * partial success      — partitions (group mix or network cells) end
//                            in exactly the predicted cliques
//   * self-distinction     — a cloned signer (scheme 2) is excluded via
//                            its duplicated T6
//   * traceability         — every surviving CASE-1 transcript traces to
//                            the correct member identities, never others
//
// Everything is deterministic per (scenario, seed): faults draw their
// randomness from hashes of (seed, round, sender, receiver), group setup
// is cached and seeded, and per-position DRBG seeds derive from the
// scenario name.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/fixture.h"
#include "core/handshake.h"
#include "core/verify.h"
#include "net/adversary.h"
#include "net/faults.h"

namespace shs::conformance {

/// One adversarial handshake configuration.
struct ScenarioSpec {
  std::string name;       // unique; keys the per-position DRBG seeds
  std::size_t m = 4;      // participants
  std::size_t groups = 1; // position p belongs to group (p % groups)
  bool scheme2 = false;   // self-distinction (scheme 2) vs scheme 1
  std::size_t threads = 1;
  std::uint64_t seed = 1;

  /// Builds the fault stack. Called with the Phase-I round count R (so
  /// schedules can target "after key agreement") and the log every fault
  /// should record into. Links are chained in vector order. Empty / null
  /// factory = clean network.
  std::function<std::vector<std::unique_ptr<net::Adversary>>(
      std::size_t phase1_rounds, net::FaultLog* log)>
      faults;

  /// Scripted deviating insiders: factory from the Phase-I round count R
  /// to {position -> per-round actions} (so scripts can say "honest
  /// through Phase I, junk afterwards" without knowing R up front).
  using InsiderScripts =
      std::map<std::size_t, std::vector<net::ByzantineInsider::Action>>;
  std::function<InsiderScripts(std::size_t phase1_rounds)> insiders;

  /// Position-cloning insiders: position -> position whose member
  /// credential it reuses (the paper's multiple-roles attack).
  std::map<std::size_t, std::size_t> clone_of;

  /// Borrowed deferred verifier: every participant batches its Phase-III
  /// signature checks through it (service/batch_verify.h) instead of
  /// verifying inline. Null = inline verification. Every invariant must
  /// hold identically either way — the sweep runs both.
  core::DeferredVerifier* batch = nullptr;
};

/// Everything a scenario run produces, ready for invariant checks.
struct ScenarioResult {
  std::string name;
  std::size_t m = 0;
  bool scheme2 = false;
  std::size_t phase1_rounds = 0;
  std::vector<core::HandshakeOutcome> outcomes;      // by position
  std::vector<net::RecordedMessage> wire;            // post-fault tap
  std::vector<net::FaultEvent> fault_events;
  std::vector<std::size_t> group_of;                 // position -> group
  std::vector<core::MemberId> member_of;             // position -> member
};

/// Runs scenarios against a cached pool of seeded test groups (group
/// setup — GSIG joins — dominates cost, so groups are built once and
/// shared; handshakes never mutate group state).
class Runner {
 public:
  Runner() = default;

  ScenarioResult run(const ScenarioSpec& spec);

  /// The authority of group `g` (for tracing checks).
  [[nodiscard]] core::GroupAuthority& authority(std::size_t group);

 private:
  core::testing::TestGroup& group(std::size_t index, std::size_t members);

  std::vector<std::unique_ptr<core::testing::TestGroup>> groups_;
};

// ---------------------------------------------------------------- invariants
// Each check FAILs (gtest non-fatal assertions) with the scenario name and
// fault-log summary attached, and returns false when any assertion failed.

/// Structural sanity on every outcome: completed, partner/reason agree,
/// confirmed positions are same-group non-forged members, and mutually
/// confirmed full-success parties share a session key. `forged` lists the
/// positions whose Phase-II/III behaviour was adversarial (scripted
/// insiders); nobody may ever confirm them.
bool check_no_false_accept(const ScenarioResult& result,
                           const std::set<std::size_t>& forged = {});

/// Observer indistinguishability: both runs have identical wire shapes
/// ((round, sender, size) sequences). Use with two clean-network runs of
/// equal (m, scheme): one succeeding, one failing.
bool check_same_wire_shape(const ScenarioResult& succeeded,
                           const ScenarioResult& failed);

/// Exact partial-success cliques: `cell_of[p]` assigns every position to
/// a communication cell (network partition; one cell = no partition).
/// The expected clique of p is its cell ∩ its group, dropped entirely
/// when smaller than 2; asserts `partner` matches exactly and that
/// same-clique parties share keys.
bool check_cliques(const ScenarioResult& result,
                   const std::vector<std::size_t>& cell_of);

/// Scheme-2 self-distinction: every honest position excludes exactly the
/// cloned positions with reason kDuplicateTag and flags the violation.
bool check_clone_detected(const ScenarioResult& result,
                          const std::set<std::size_t>& cloned);

/// Traceability of surviving CASE-1 transcripts: for every participant
/// that confirmed >= 2 positions, its own group authority recovers at
/// least the confirmed members whose (theta, delta) pair survived on the
/// wire — every confirmed peer by construction, the participant itself
/// unless the adversary destroyed its own Phase-III slot — and never a
/// non-participant.
bool check_traceability(const ScenarioResult& result, Runner& runner);

/// Seeds the conformance sweep runs under. Defaults to {1}; the
/// SHS_CONFORMANCE_SEEDS environment variable ("7,19,23") appends extra
/// published seeds (tools/check.sh --conformance uses this).
std::vector<std::uint64_t> conformance_seeds();

}  // namespace shs::conformance
