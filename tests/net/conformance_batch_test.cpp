// The adversarial conformance sweep with batched verification enabled:
// every scenario runs twice — inline verification vs a shared
// service::BatchVerifier — and must produce identical outcomes (down to
// session keys and transcripts) and a byte-identical post-fault wire.
// Batching only changes *when* Phase-III signature checks are computed;
// any divergence here means the fold changed a verdict or, worse, a
// deferred check leaked onto the wire.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "conformance_harness.h"
#include "service/batch_verify.h"

namespace shs::conformance {
namespace {

using net::Adversary;
using net::ByzantineInsider;
using net::FaultLog;
using net::TamperFault;

Runner& runner() {
  static Runner r;
  return r;
}

service::BatchVerifier make_batch(service::ServiceMetrics* metrics) {
  service::BatchVerifierOptions options;
  options.seed = to_bytes("conformance-batch-seed");
  options.metrics = metrics;
  return service::BatchVerifier(std::move(options));
}

void expect_identical(const ScenarioResult& inline_run,
                      const ScenarioResult& batched_run) {
  ASSERT_EQ(inline_run.outcomes.size(), batched_run.outcomes.size());
  for (std::size_t i = 0; i < inline_run.outcomes.size(); ++i) {
    SCOPED_TRACE(inline_run.name + " position " + std::to_string(i));
    const core::HandshakeOutcome& a = inline_run.outcomes[i];
    const core::HandshakeOutcome& b = batched_run.outcomes[i];
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.partner, b.partner);
    EXPECT_EQ(a.full_success, b.full_success);
    EXPECT_EQ(a.self_distinction_violated, b.self_distinction_violated);
    EXPECT_EQ(a.session_key, b.session_key);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.transcript.serialize(), b.transcript.serialize());
  }
  ASSERT_EQ(inline_run.wire.size(), batched_run.wire.size());
  for (std::size_t i = 0; i < inline_run.wire.size(); ++i) {
    EXPECT_EQ(inline_run.wire[i].round, batched_run.wire[i].round);
    EXPECT_EQ(inline_run.wire[i].sender, batched_run.wire[i].sender);
    EXPECT_EQ(inline_run.wire[i].payload, batched_run.wire[i].payload)
        << inline_run.name << " wire slot " << i
        << ": batching must be invisible on the wire";
  }
}

TEST(ConformanceBatch, CleanSessionsMatchInlineBitForBit) {
  for (std::size_t m : {2u, 4u, 8u}) {
    for (bool scheme2 : {false, true}) {
      ScenarioSpec spec;
      spec.name = "batch-clean-m" + std::to_string(m) +
                  (scheme2 ? "-s2" : "-s1");
      spec.m = m;
      spec.scheme2 = scheme2;
      const ScenarioResult inline_run = runner().run(spec);

      service::ServiceMetrics metrics;
      service::BatchVerifier batch = make_batch(&metrics);
      spec.batch = &batch;
      const ScenarioResult batched_run = runner().run(spec);

      expect_identical(inline_run, batched_run);
      check_no_false_accept(batched_run);
      check_traceability(batched_run, runner());
      // Deferral really happened: every party's m-1 peer checks were
      // enqueued, and dedup collapsed them to one job per signature.
      EXPECT_EQ(metrics.batch_jobs.load(), m * (m - 1));
      EXPECT_EQ(metrics.batch_jobs_deduped.load(), m * (m - 1) - m);
      EXPECT_EQ(metrics.batch_jobs_rejected.load(), 0u);
      EXPECT_GE(metrics.batch_flushes.load(), 1u);
    }
  }
}

TEST(ConformanceBatch, TamperStormNeverForgesAnAcceptWhenBatched) {
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : {false, true}) {
      ScenarioSpec spec;
      spec.name = std::string("batch-tamper-") + (scheme2 ? "s2" : "s1");
      spec.m = 4;
      spec.scheme2 = scheme2;
      spec.seed = seed;
      spec.faults = [seed](std::size_t, FaultLog* log) {
        std::vector<std::unique_ptr<Adversary>> links;
        links.push_back(std::make_unique<TamperFault>(
            seed, TamperFault::Config{0.3}, log));
        return links;
      };
      const ScenarioResult inline_run = runner().run(spec);

      service::ServiceMetrics metrics;
      service::BatchVerifier batch = make_batch(&metrics);
      spec.batch = &batch;
      const ScenarioResult batched_run = runner().run(spec);

      expect_identical(inline_run, batched_run);
      check_no_false_accept(batched_run);
    }
  }
}

TEST(ConformanceBatch, ByzantinePhase3InsiderExcludedIdentically) {
  for (std::uint64_t seed : conformance_seeds()) {
    ScenarioSpec spec;
    spec.name = "batch-byz-p3";
    spec.m = 4;
    spec.seed = seed;
    // Honest through key agreement, junk in the signature round: the
    // forged Phase-III slot rides into the batch and must be rejected
    // there without dragging down its batch-mates.
    spec.insiders = [](std::size_t phase1_rounds) {
      std::vector<ByzantineInsider::Action> script(
          phase1_rounds + 2, ByzantineInsider::Action::kFollow);
      script.back() = ByzantineInsider::Action::kFlipBit;
      return ScenarioSpec::InsiderScripts{{2, script}};
    };
    const ScenarioResult inline_run = runner().run(spec);

    service::ServiceMetrics metrics;
    service::BatchVerifier batch = make_batch(&metrics);
    spec.batch = &batch;
    const ScenarioResult batched_run = runner().run(spec);

    expect_identical(inline_run, batched_run);
    check_no_false_accept(batched_run, {2});
    for (std::size_t i = 0; i < batched_run.m; ++i) {
      if (i == 2) continue;
      EXPECT_FALSE(batched_run.outcomes[i].partner[2])
          << "position " << i << " confirmed the forging insider";
    }
  }
}

TEST(ConformanceBatch, CloningInsiderExposedIdenticallyWhenBatched) {
  ScenarioSpec spec;
  spec.name = "batch-clone";
  spec.m = 4;
  spec.scheme2 = true;
  spec.clone_of = {{3, 1}};  // position 3 reuses position 1's credential
  const ScenarioResult inline_run = runner().run(spec);

  service::ServiceMetrics metrics;
  service::BatchVerifier batch = make_batch(&metrics);
  spec.batch = &batch;
  const ScenarioResult batched_run = runner().run(spec);

  expect_identical(inline_run, batched_run);
  check_clone_detected(batched_run, {1, 3});
}

}  // namespace
}  // namespace shs::conformance
