#include "conformance_harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <tuple>

#include "bigint/random.h"
#include "common/errors.h"
#include "core/member.h"

namespace shs::conformance {

namespace {

std::string describe(const ScenarioResult& result) {
  std::ostringstream os;
  os << "scenario '" << result.name << "' (m=" << result.m << ", scheme "
     << (result.scheme2 ? 2 : 1) << "): ";
  net::FaultLog log;
  for (const net::FaultEvent& e : result.fault_events) log.record(e);
  os << log.summary();
  return os.str();
}

}  // namespace

core::testing::TestGroup& Runner::group(std::size_t index,
                                        std::size_t members) {
  while (groups_.size() <= index) {
    groups_.push_back(std::make_unique<core::testing::TestGroup>(
        "conf-g" + std::to_string(groups_.size()), core::GroupConfig{}));
  }
  core::testing::TestGroup& g = *groups_[index];
  while (g.size() < members) {
    g.admit(static_cast<core::MemberId>(index * 100 + g.size() + 1));
  }
  return g;
}

core::GroupAuthority& Runner::authority(std::size_t g) {
  return group(g, 0).authority();
}

ScenarioResult Runner::run(const ScenarioSpec& spec) {
  if (spec.groups == 0 || spec.m < 2) {
    throw ProtocolError("conformance: malformed scenario spec");
  }
  const std::size_t per_group = (spec.m + spec.groups - 1) / spec.groups;

  core::HandshakeOptions options;
  options.self_distinction = spec.scheme2;

  ScenarioResult result;
  result.name = spec.name + "#" + std::to_string(spec.seed);
  result.m = spec.m;
  result.scheme2 = spec.scheme2;
  result.group_of.resize(spec.m);
  result.member_of.resize(spec.m);

  std::vector<std::unique_ptr<core::HandshakeParticipant>> participants;
  participants.reserve(spec.m);
  for (std::size_t pos = 0; pos < spec.m; ++pos) {
    // A cloned slot reuses the member of its clone source — the paper's
    // one-signer-many-roles insider.
    const auto clone = spec.clone_of.find(pos);
    const std::size_t source =
        clone == spec.clone_of.end() ? pos : clone->second;
    const core::Member& member =
        group(source % spec.groups, per_group).member(source / spec.groups);
    result.group_of[pos] = source % spec.groups;
    result.member_of[pos] = member.id();
    const std::string drbg_seed = "conf:" + spec.name + ":" +
                                  std::to_string(spec.seed) + ":" +
                                  std::to_string(pos);
    participants.push_back(
        member.handshake_party(pos, spec.m, options, to_bytes(drbg_seed)));
    if (spec.batch != nullptr) {
      participants.back()->set_deferred_verifier(spec.batch);
    }
  }

  result.phase1_rounds = participants.front()->total_rounds() - 2;

  net::FaultLog log;
  const ScenarioSpec::InsiderScripts scripts =
      spec.insiders ? spec.insiders(result.phase1_rounds)
                    : ScenarioSpec::InsiderScripts{};
  std::vector<std::unique_ptr<net::ByzantineInsider>> insiders;
  std::vector<net::RoundParty*> parties;
  parties.reserve(spec.m);
  for (std::size_t pos = 0; pos < spec.m; ++pos) {
    const auto script = scripts.find(pos);
    if (script == scripts.end()) {
      parties.push_back(participants[pos].get());
      continue;
    }
    insiders.push_back(std::make_unique<net::ByzantineInsider>(
        participants[pos].get(), pos, spec.seed ^ (0xb12a0ULL + pos),
        script->second, &log));
    parties.push_back(insiders.back().get());
  }

  std::vector<std::unique_ptr<net::Adversary>> links;
  if (spec.faults) links = spec.faults(result.phase1_rounds, &log);
  net::ChainAdversary chain;
  for (const auto& link : links) chain.add(link.get());
  net::RecordingAdversary tap;  // post-fault eavesdropper view
  chain.add(&tap);

  num::TestRng shuffle(spec.seed ^ 0x5ca1ab1eULL);
  net::DriverOptions driver;
  driver.threads = spec.threads;
  net::run_protocol(parties, &chain, &shuffle, driver);

  result.outcomes.reserve(spec.m);
  for (const auto& p : participants) result.outcomes.push_back(p->outcome());
  result.wire = tap.records();
  result.fault_events = log.events();
  return result;
}

bool check_no_false_accept(const ScenarioResult& result,
                           const std::set<std::size_t>& forged) {
  bool ok = true;
  for (std::size_t i = 0; i < result.m; ++i) {
    const core::HandshakeOutcome& o = result.outcomes[i];
    if (!o.completed || o.partner.size() != result.m ||
        o.reason.size() != result.m) {
      ADD_FAILURE() << describe(result) << " position " << i
                    << ": outcome incomplete or malformed";
      ok = false;
      continue;
    }
    if (o.full_success != (o.confirmed_count() == result.m)) {
      ADD_FAILURE() << describe(result) << " position " << i
                    << ": full_success flag inconsistent";
      ok = false;
    }
    for (std::size_t j = 0; j < result.m; ++j) {
      if (o.partner[j] !=
          (o.reason[j] == core::FailureReason::kConfirmed)) {
        ADD_FAILURE() << describe(result) << " position " << i
                      << ": partner/reason disagree for " << j << " ("
                      << core::to_string(o.reason[j]) << ")";
        ok = false;
      }
      if (!o.partner[j]) continue;
      if (result.group_of[j] != result.group_of[i]) {
        ADD_FAILURE() << describe(result) << " FALSE ACCEPT: position " << i
                      << " (group " << result.group_of[i]
                      << ") confirmed cross-group position " << j;
        ok = false;
      }
      if (j != i && forged.count(j) != 0) {
        ADD_FAILURE() << describe(result) << " FALSE ACCEPT: position " << i
                      << " confirmed forged position " << j;
        ok = false;
      }
    }
  }
  // Full mutual success implies an agreed session key.
  for (std::size_t i = 0; i < result.m; ++i) {
    for (std::size_t j = i + 1; j < result.m; ++j) {
      const core::HandshakeOutcome& a = result.outcomes[i];
      const core::HandshakeOutcome& b = result.outcomes[j];
      if (a.full_success && b.full_success && a.partner[j] && b.partner[i]) {
        if (a.session_key.empty() || a.session_key != b.session_key) {
          ADD_FAILURE() << describe(result) << " positions " << i << "/" << j
                        << ": mutual full success without a shared key";
          ok = false;
        }
      }
    }
  }
  return ok;
}

bool check_same_wire_shape(const ScenarioResult& succeeded,
                           const ScenarioResult& failed) {
  const auto a = net::wire_shape(succeeded.wire);
  const auto b = net::wire_shape(failed.wire);
  if (a == b) return true;
  std::ostringstream os;
  os << "wire shapes differ between " << describe(succeeded) << " and "
     << describe(failed) << ": " << a.size() << " vs " << b.size()
     << " slots";
  for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k) {
    if (a[k] != b[k]) {
      os << "; first divergence at slot " << k << " (round "
         << std::get<0>(a[k]) << ", sender " << std::get<1>(a[k]) << "): "
         << std::get<2>(a[k]) << " vs " << std::get<2>(b[k]) << " bytes";
      break;
    }
  }
  ADD_FAILURE() << os.str();
  return false;
}

bool check_cliques(const ScenarioResult& result,
                   const std::vector<std::size_t>& cell_of) {
  bool ok = true;
  for (std::size_t i = 0; i < result.m; ++i) {
    std::set<std::size_t> expected;
    for (std::size_t j = 0; j < result.m; ++j) {
      if (result.group_of[j] == result.group_of[i] &&
          cell_of[j] == cell_of[i]) {
        expected.insert(j);
      }
    }
    if (expected.size() < 2) expected.clear();  // no clique of >= 2
    const core::HandshakeOutcome& o = result.outcomes[i];
    for (std::size_t j = 0; j < result.m; ++j) {
      if (o.partner[j] != (expected.count(j) != 0)) {
        ADD_FAILURE() << describe(result) << " position " << i
                      << ": clique mismatch at " << j << " (expected "
                      << (expected.count(j) != 0) << ", reason "
                      << core::to_string(o.reason[j]) << ")";
        ok = false;
      }
    }
    // Same-clique parties agree on the key; the key exists iff a clique
    // formed.
    if (expected.empty() != o.session_key.empty()) {
      ADD_FAILURE() << describe(result) << " position " << i
                    << ": session key presence does not match its clique";
      ok = false;
    }
    for (std::size_t j : expected) {
      if (j <= i) continue;
      if (result.outcomes[j].session_key != o.session_key) {
        ADD_FAILURE() << describe(result) << " positions " << i << "/" << j
                      << ": same clique, different keys";
        ok = false;
      }
    }
  }
  return ok;
}

bool check_clone_detected(const ScenarioResult& result,
                          const std::set<std::size_t>& cloned) {
  bool ok = true;
  for (std::size_t i = 0; i < result.m; ++i) {
    if (cloned.count(i) != 0) continue;  // the clones' own view is moot
    const core::HandshakeOutcome& o = result.outcomes[i];
    if (!o.self_distinction_violated) {
      ADD_FAILURE() << describe(result) << " honest position " << i
                    << " failed to flag the cloned signer";
      ok = false;
    }
    for (std::size_t j = 0; j < result.m; ++j) {
      const bool is_clone = cloned.count(j) != 0;
      if (is_clone &&
          (o.partner[j] ||
           o.reason[j] != core::FailureReason::kDuplicateTag)) {
        ADD_FAILURE() << describe(result) << " honest position " << i
                      << ": cloned position " << j << " not excluded ("
                      << core::to_string(o.reason[j]) << ")";
        ok = false;
      }
      if (!is_clone && !o.partner[j]) {
        ADD_FAILURE() << describe(result) << " honest position " << i
                      << ": honest position " << j << " wrongly excluded ("
                      << core::to_string(o.reason[j]) << ")";
        ok = false;
      }
    }
  }
  return ok;
}

bool check_traceability(const ScenarioResult& result, Runner& runner) {
  bool ok = true;
  for (std::size_t i = 0; i < result.m; ++i) {
    const core::HandshakeOutcome& o = result.outcomes[i];
    if (o.confirmed_count() < 2) continue;  // no surviving CASE-1 clique
    std::vector<core::MemberId> traced =
        runner.authority(result.group_of[i]).trace(o.transcript);
    const std::set<core::MemberId> traced_set(traced.begin(), traced.end());
    std::set<core::MemberId> allowed;  // same-group participants
    for (std::size_t j = 0; j < result.m; ++j) {
      if (result.group_of[j] == result.group_of[i]) {
        allowed.insert(result.member_of[j]);
      }
    }
    for (std::size_t j = 0; j < result.m; ++j) {
      if (!o.partner[j]) continue;
      // The participant's own slot is only traceable if its (theta,
      // delta) pair survived on the wire; confirmed peers' pairs did by
      // construction (they were decrypted and verified).
      if (j == i && o.transcript.entries[i].delta.empty()) continue;
      if (traced_set.count(result.member_of[j]) == 0) {
        ADD_FAILURE() << describe(result) << " transcript of position " << i
                      << ": confirmed member " << result.member_of[j]
                      << " (position " << j << ") is untraceable";
        ok = false;
      }
    }
    for (core::MemberId id : traced_set) {
      if (allowed.count(id) == 0) {
        ADD_FAILURE() << describe(result) << " transcript of position " << i
                      << ": traced to non-participant " << id;
        ok = false;
      }
    }
  }
  return ok;
}

std::vector<std::uint64_t> conformance_seeds() {
  std::vector<std::uint64_t> seeds = {1};
  const char* extra = std::getenv("SHS_CONFORMANCE_SEEDS");
  if (extra == nullptr) return seeds;
  std::stringstream ss{std::string(extra)};
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  return seeds;
}

}  // namespace shs::conformance
