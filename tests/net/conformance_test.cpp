// Scenario-driven conformance sweep: seeded adversary schedules from the
// src/net fault library run against full handshakes over the
// m x scheme x driver grid, asserting the paper's security invariants
// (see conformance_harness.h for the property list).
//
// Every scenario is deterministic per seed. The default run sweeps seed 1;
// tools/check.sh --conformance publishes three extra seeds through the
// SHS_CONFORMANCE_SEEDS environment variable.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "conformance_harness.h"

namespace shs::conformance {
namespace {

using net::Adversary;
using net::ByzantineInsider;
using net::ChainAdversary;
using net::DropFault;
using net::FaultLog;
using net::PartitionFault;
using net::ReorderDelayFault;
using net::ReplayFault;
using net::ScheduledAdversary;
using net::TamperFault;

constexpr std::size_t kMs[] = {2, 4, 8};
constexpr bool kSchemes[] = {false, true};
constexpr std::size_t kThreadCounts[] = {1, 4};

Runner& runner() {
  static Runner r;
  return r;
}

std::string tag(std::size_t m, bool scheme2, std::size_t threads) {
  return "m" + std::to_string(m) + "-s" + (scheme2 ? "2" : "1") + "-t" +
         std::to_string(threads);
}

/// Network-partition cells: positions < m/2 vs the rest.
std::vector<std::size_t> half_cells(std::size_t m) {
  std::vector<std::size_t> cells(m, 0);
  for (std::size_t i = m / 2; i < m; ++i) cells[i] = 1;
  return cells;
}

// ---------------------------------------------------------------- baseline

TEST(Conformance, CleanSessionsSucceedEverywhereAndTrace) {
  for (std::size_t m : kMs) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec;
        spec.name = "clean-" + tag(m, scheme2, threads);
        spec.m = m;
        spec.scheme2 = scheme2;
        spec.threads = threads;
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result);
        check_traceability(result, runner());
        for (std::size_t i = 0; i < m; ++i) {
          EXPECT_TRUE(result.outcomes[i].full_success)
              << spec.name << " position " << i << ": "
              << result.outcomes[i].failure;
        }
      }
    }
  }
}

// ------------------------------------------- observer indistinguishability

TEST(Conformance, FailingSessionsAreShapeIdenticalToSucceedingOnes) {
  // A mixed-group session fails (m=2) or partially succeeds (m>=4), yet
  // an eavesdropper must see the exact same wire shape as in an all-good
  // session: resistance to detection.
  for (std::size_t m : kMs) {
    for (bool scheme2 : kSchemes) {
      ScenarioSpec clean;
      clean.name = "shape-clean-" + tag(m, scheme2, 1);
      clean.m = m;
      clean.scheme2 = scheme2;
      const ScenarioResult good = runner().run(clean);

      ScenarioSpec mixed = clean;
      mixed.name = "shape-mixed-" + tag(m, scheme2, 1);
      mixed.groups = 2;
      const ScenarioResult partial = runner().run(mixed);

      check_same_wire_shape(good, partial);
      check_no_false_accept(partial);
      check_traceability(partial, runner());
      // Group-membership cliques: with one communication cell the
      // expected clique of p is exactly its group.
      check_cliques(partial, std::vector<std::size_t>(m, 0));
      EXPECT_FALSE(partial.outcomes[0].full_success) << mixed.name;
    }
  }
}

// ------------------------------------------------------ network partitions

TEST(Conformance, PartitionAfterKeyAgreementYieldsExactCells) {
  for (std::uint64_t seed : conformance_seeds()) {
    for (std::size_t m : kMs) {
      for (bool scheme2 : kSchemes) {
        for (std::size_t threads : kThreadCounts) {
          ScenarioSpec spec;
          spec.name = "partition-" + tag(m, scheme2, threads);
          spec.m = m;
          spec.scheme2 = scheme2;
          spec.threads = threads;
          spec.seed = seed;
          const auto cells = half_cells(m);
          spec.faults = [cells](std::size_t phase1_rounds, FaultLog* log) {
            std::vector<std::unique_ptr<Adversary>> links;
            links.push_back(std::make_unique<ScheduledAdversary>(
                std::make_unique<PartitionFault>(cells, log),
                ScheduledAdversary::from_round(phase1_rounds)));
            return links;
          };
          const ScenarioResult result = runner().run(spec);
          check_no_false_accept(result);
          check_cliques(result, cells);
          check_traceability(result, runner());
          EXPECT_GT(result.fault_events.size(), 0u) << spec.name;
        }
      }
    }
  }
}

// ----------------------------------------------------------- fault storms

ScenarioSpec storm_spec(const std::string& family, bool scheme2,
                        std::size_t threads, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = family + "-" + tag(4, scheme2, threads);
  spec.m = 4;
  spec.scheme2 = scheme2;
  spec.threads = threads;
  spec.seed = seed;
  return spec;
}

TEST(Conformance, DropStormNeverForgesAnAccept) {
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec = storm_spec("drop", scheme2, threads, seed);
        spec.faults = [seed](std::size_t, FaultLog* log) {
          std::vector<std::unique_ptr<Adversary>> links;
          links.push_back(std::make_unique<DropFault>(
              seed, DropFault::Config{0.2, 0.05, 0.05}, log));
          return links;
        };
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result);
        check_traceability(result, runner());
      }
    }
  }
}

TEST(Conformance, TamperStormNeverForgesAnAccept) {
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec = storm_spec("tamper", scheme2, threads, seed);
        spec.faults = [seed](std::size_t, FaultLog* log) {
          std::vector<std::unique_ptr<Adversary>> links;
          links.push_back(std::make_unique<TamperFault>(
              seed, TamperFault::Config{0.25, TamperFault::Mode::kMix},
              log));
          return links;
        };
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result);
        check_traceability(result, runner());
      }
    }
  }
}

TEST(Conformance, FullCrossRoundReplayStormYieldsZeroConfirmations) {
  // Replacing every round-r message (r >= 1) with the sender's previous
  // broadcast derails the key agreement and invalidates every tag: stale
  // payloads never authenticate, so nobody confirms anybody.
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec = storm_spec("replay-full", scheme2, threads, seed);
        spec.faults = [seed](std::size_t, FaultLog* log) {
          std::vector<std::unique_ptr<Adversary>> links;
          links.push_back(std::make_unique<ReplayFault>(
              seed, ReplayFault::Config{/*cross_round=*/1.0, 0.0}, log));
          return links;
        };
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result);
        for (std::size_t i = 0; i < result.m; ++i) {
          EXPECT_EQ(result.outcomes[i].confirmed_count(), 0u)
              << spec.name << " position " << i
              << " accepted replayed material";
          EXPECT_TRUE(result.outcomes[i].completed) << spec.name;
        }
        EXPECT_GT(result.fault_events.size(), 0u) << spec.name;
      }
    }
  }
}

TEST(Conformance, ReplayedPhase3SlotsAreRejectedNotAccepted) {
  // A replay fault that only activates after Phase II can only feed each
  // receiver the Phase-II tags it saw in place of the Phase-III pairs.
  // Those must be rejected wholesale — as unparseable or cryptographically
  // invalid — leaving every participant confirming only itself.
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec = storm_spec("replay-p3", scheme2, threads, seed);
        spec.faults = [seed](std::size_t phase1_rounds, FaultLog* log) {
          std::vector<std::unique_ptr<Adversary>> links;
          links.push_back(std::make_unique<ScheduledAdversary>(
              std::make_unique<ReplayFault>(
                  seed, ReplayFault::Config{/*cross_round=*/1.0, 0.0}, log),
              ScheduledAdversary::from_round(phase1_rounds)));
          return links;
        };
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result);
        for (std::size_t i = 0; i < result.m; ++i) {
          const auto& o = result.outcomes[i];
          EXPECT_EQ(o.confirmed_count(), 1u)
              << spec.name << " position " << i;
          EXPECT_TRUE(o.partner[i]) << spec.name << " position " << i;
          for (std::size_t j = 0; j < result.m; ++j) {
            if (j == i) continue;
            EXPECT_TRUE(
                o.reason[j] == core::FailureReason::kMalformedPhase3 ||
                o.reason[j] == core::FailureReason::kBadSignature)
                << spec.name << " position " << i << " slot " << j << ": "
                << core::to_string(o.reason[j]);
          }
        }
      }
    }
  }
}

TEST(Conformance, DelayedPhase2TagExcludesExactlyItsSender) {
  // Sender 1's Phase-II tag is held back and re-injected as its Phase-III
  // message: every honest receiver must exclude exactly position 1.
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec = storm_spec("delay", scheme2, threads, seed);
        spec.faults = [](std::size_t phase1_rounds, FaultLog* log) {
          std::vector<std::unique_ptr<Adversary>> links;
          links.push_back(std::make_unique<ReorderDelayFault>(
              ReorderDelayFault::Config{phase1_rounds, /*sender=*/1,
                                        /*delay=*/1},
              log));
          return links;
        };
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result);
        check_traceability(result, runner());
        for (std::size_t i = 0; i < result.m; ++i) {
          if (i == 1) continue;
          const auto& o = result.outcomes[i];
          EXPECT_FALSE(o.partner[1]) << spec.name << " position " << i;
          EXPECT_EQ(o.reason[1], core::FailureReason::kBadTag)
              << spec.name << " position " << i;
          for (std::size_t j = 0; j < result.m; ++j) {
            if (j != 1) {
              EXPECT_TRUE(o.partner[j])
                  << spec.name << " position " << i << " lost " << j;
            }
          }
        }
      }
    }
  }
}

TEST(Conformance, ChainedFaultStormNeverForgesAnAccept) {
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec = storm_spec("chain", scheme2, threads, seed);
        spec.faults = [seed](std::size_t, FaultLog* log) {
          std::vector<std::unique_ptr<Adversary>> links;
          links.push_back(std::make_unique<DropFault>(
              seed, DropFault::Config{0.08, 0.0, 0.0}, log));
          links.push_back(std::make_unique<TamperFault>(
              seed ^ 0xfeedULL,
              TamperFault::Config{0.12, TamperFault::Mode::kMix}, log));
          links.push_back(std::make_unique<ReplayFault>(
              seed ^ 0xbeefULL, ReplayFault::Config{0.15, 0.0}, log));
          return links;
        };
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result);
        check_traceability(result, runner());
      }
    }
  }
}

// ------------------------------------------------------- insider deviation

TEST(Conformance, ByzantinePhase2InsiderIsExcludedByEveryHonestParty) {
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      for (std::size_t threads : kThreadCounts) {
        ScenarioSpec spec = storm_spec("byz-p2", scheme2, threads, seed);
        // Follow Phase I honestly, then broadcast junk in Phases II/III.
        spec.insiders = [](std::size_t phase1_rounds) {
          std::vector<ByzantineInsider::Action> script(
              phase1_rounds, ByzantineInsider::Action::kFollow);
          script.push_back(ByzantineInsider::Action::kRandom);
          script.push_back(ByzantineInsider::Action::kRandom);
          return ScenarioSpec::InsiderScripts{{3, script}};
        };
        const ScenarioResult result = runner().run(spec);
        check_no_false_accept(result, /*forged=*/{3});
        check_traceability(result, runner());
        for (std::size_t i = 0; i < 3; ++i) {
          const auto& o = result.outcomes[i];
          EXPECT_FALSE(o.partner[3]) << spec.name << " position " << i;
          EXPECT_EQ(o.reason[3], core::FailureReason::kBadTag)
              << spec.name << " position " << i;
          EXPECT_TRUE(o.partner[0] && o.partner[1] && o.partner[2])
              << spec.name << " honest clique broken at " << i;
        }
      }
    }
  }
}

TEST(Conformance, ByzantinePhase1InsiderSinksTheSessionSilently) {
  // Garbage in the key agreement breaks the session for everyone, but
  // every party still completes all rounds with zero confirmations.
  for (std::uint64_t seed : conformance_seeds()) {
    for (bool scheme2 : kSchemes) {
      ScenarioSpec spec = storm_spec("byz-p1", scheme2, 1, seed);
      spec.insiders = [](std::size_t) {
        return ScenarioSpec::InsiderScripts{
            {2, {ByzantineInsider::Action::kFlipBit}}};
      };
      const ScenarioResult result = runner().run(spec);
      check_no_false_accept(result, /*forged=*/{2});
      for (std::size_t i = 0; i < result.m; ++i) {
        EXPECT_TRUE(result.outcomes[i].completed) << spec.name;
        if (i == 2) continue;
        EXPECT_EQ(result.outcomes[i].confirmed_count(), 0u)
            << spec.name << " position " << i;
      }
    }
  }
}

// ------------------------------------------------- scheme-2 clone insider

TEST(Conformance, CloningInsiderIsExposedByDuplicateT6) {
  for (std::uint64_t seed : conformance_seeds()) {
    for (std::size_t threads : kThreadCounts) {
      ScenarioSpec spec;
      spec.name = "clone-" + tag(4, true, threads);
      spec.m = 4;
      spec.scheme2 = true;
      spec.threads = threads;
      spec.seed = seed;
      spec.clone_of[3] = 1;  // position 3 reuses position 1's member
      const ScenarioResult result = runner().run(spec);
      check_clone_detected(result, /*cloned=*/{1, 3});
      check_no_false_accept(result);
      check_traceability(result, runner());
    }
  }
}

TEST(Conformance, Scheme1CannotSeeTheCloneButScheme2Can) {
  // The motivating gap (paper §1.1): the same attack sails through
  // scheme 1 — documenting why self-distinction exists.
  ScenarioSpec spec;
  spec.name = "clone-blind-" + tag(4, false, 1);
  spec.m = 4;
  spec.scheme2 = false;
  spec.clone_of[3] = 1;
  const ScenarioResult result = runner().run(spec);
  check_no_false_accept(result);
  for (const auto& o : result.outcomes) {
    EXPECT_TRUE(o.full_success) << spec.name;
    EXPECT_FALSE(o.self_distinction_violated) << spec.name;
  }
}

}  // namespace
}  // namespace shs::conformance
