// Sigma-protocol engine tests: completeness across statement shapes,
// soundness smoke tests (wrong witnesses / tampered proofs / wrong context
// rejected), interval enforcement, and serialization roundtrips.
#include <gtest/gtest.h>

#include "algebra/qr_group.h"
#include "crypto/drbg.h"
#include "common/errors.h"
#include "gsig/sigma.h"

namespace shs::gsig {
namespace {

using num::BigInt;

class SigmaTest : public ::testing::Test {
 protected:
  SigmaTest()
      : rng_(to_bytes("sigma-test")),
        group_(algebra::QrGroup::standard(algebra::ParamLevel::kTest).first) {}

  crypto::HmacDrbg rng_;
  algebra::QrGroup group_;
};

TEST_F(SigmaTest, SingleDlogCompleteness) {
  const BigInt g = group_.random_qr(rng_);
  const BigInt w = num::random_bits(200, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 200}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  const SigmaProof proof = sigma_prove(group_, st, {w}, to_bytes("ctx"), rng_);
  EXPECT_TRUE(sigma_verify(group_, st, proof, to_bytes("ctx")));
}

TEST_F(SigmaTest, MultiBaseMultiRelationCompleteness) {
  // Pedersen-style: C1 = g^w1 h^w2, C2 = g^w2 (shared w2), C3 = h^{-w1} k^w3.
  const BigInt g = group_.random_qr(rng_);
  const BigInt h = group_.random_qr(rng_);
  const BigInt k = group_.random_qr(rng_);
  const BigInt w1 = num::random_bits(128, rng_);
  const BigInt w2 = num::random_bits(160, rng_);
  const BigInt w3 = num::random_bits(100, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 128}, {BigInt(0), 160}, {BigInt(0), 100}};
  st.relations = {
      {group_.mul(group_.exp(g, w1), group_.exp(h, w2)),
       {{0, g, +1}, {1, h, +1}}},
      {group_.exp(g, w2), {{1, g, +1}}},
      {group_.mul(group_.exp(h, -w1), group_.exp(k, w3)),
       {{0, h, -1}, {2, k, +1}}},
  };
  const SigmaProof proof =
      sigma_prove(group_, st, {w1, w2, w3}, to_bytes("ctx"), rng_);
  EXPECT_TRUE(sigma_verify(group_, st, proof, to_bytes("ctx")));
}

TEST_F(SigmaTest, OffsetWitnessCompleteness) {
  // Witness near 2^300 with range 2^64 (the ACJT interval pattern).
  const BigInt g = group_.random_qr(rng_);
  const BigInt offset = BigInt(1) << 300;
  const BigInt w = offset + num::random_bits(60, rng_);
  SigmaStatement st;
  st.witnesses = {{offset, 64}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  const SigmaProof proof = sigma_prove(group_, st, {w}, {}, rng_);
  EXPECT_TRUE(sigma_verify(group_, st, proof, {}));
}

TEST_F(SigmaTest, WrongContextRejected) {
  const BigInt g = group_.random_qr(rng_);
  const BigInt w = num::random_bits(64, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 64}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  const SigmaProof proof = sigma_prove(group_, st, {w}, to_bytes("a"), rng_);
  EXPECT_FALSE(sigma_verify(group_, st, proof, to_bytes("b")));
}

TEST_F(SigmaTest, WrongStatementValueRejected) {
  const BigInt g = group_.random_qr(rng_);
  const BigInt w = num::random_bits(64, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 64}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  const SigmaProof proof = sigma_prove(group_, st, {w}, {}, rng_);
  SigmaStatement other = st;
  other.relations[0].value = group_.exp(g, w + BigInt(1));
  EXPECT_FALSE(sigma_verify(group_, other, proof, {}));
}

TEST_F(SigmaTest, TamperedProofRejected) {
  const BigInt g = group_.random_qr(rng_);
  const BigInt w = num::random_bits(64, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 64}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  SigmaProof proof = sigma_prove(group_, st, {w}, {}, rng_);
  {
    SigmaProof bad = proof;
    bad.challenge[0] ^= 1;
    EXPECT_FALSE(sigma_verify(group_, st, bad, {}));
  }
  {
    SigmaProof bad = proof;
    bad.responses[0] += BigInt(1);
    EXPECT_FALSE(sigma_verify(group_, st, bad, {}));
  }
  {
    SigmaProof bad = proof;
    bad.responses.clear();
    EXPECT_FALSE(sigma_verify(group_, st, bad, {}));
  }
}

TEST_F(SigmaTest, OversizedResponseRejected) {
  // A response violating the interval bound must fail even if the algebra
  // happens to hold (here it will not, but the check must fire first).
  const BigInt g = group_.random_qr(rng_);
  const BigInt w = num::random_bits(16, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 16}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  SigmaProof proof = sigma_prove(group_, st, {w}, {}, rng_);
  proof.responses[0] = BigInt(1) << (eps_bits(16 + kChallengeBits) + 10);
  EXPECT_FALSE(sigma_verify(group_, st, proof, {}));
}

TEST_F(SigmaTest, SerializationRoundtrip) {
  const BigInt g = group_.random_qr(rng_);
  const BigInt w = num::random_bits(64, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 64}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  const SigmaProof proof = sigma_prove(group_, st, {w}, {}, rng_);
  const SigmaProof copy = SigmaProof::deserialize(proof.serialize());
  EXPECT_EQ(copy.challenge, proof.challenge);
  EXPECT_EQ(copy.responses.size(), proof.responses.size());
  EXPECT_TRUE(sigma_verify(group_, st, copy, {}));
  EXPECT_THROW((void)SigmaProof::deserialize(Bytes(3, 7)), CodecError);
}

TEST_F(SigmaTest, ProofsAreRandomized) {
  const BigInt g = group_.random_qr(rng_);
  const BigInt w = num::random_bits(64, rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 64}};
  st.relations = {{group_.exp(g, w), {{0, g, +1}}}};
  const SigmaProof p1 = sigma_prove(group_, st, {w}, {}, rng_);
  const SigmaProof p2 = sigma_prove(group_, st, {w}, {}, rng_);
  EXPECT_NE(p1.challenge, p2.challenge);
}

TEST_F(SigmaTest, WitnessCountMismatchThrows) {
  const BigInt g = group_.random_qr(rng_);
  SigmaStatement st;
  st.witnesses = {{BigInt(0), 64}};
  st.relations = {{g, {{0, g, +1}}}};
  EXPECT_THROW((void)sigma_prove(group_, st, {}, {}, rng_), ProtocolError);
}

}  // namespace
}  // namespace shs::gsig
