// Group-signature tests, parameterized over ACJT and KTY: sign/verify/open
// roundtrips, anonymity sanity (distinct signatures, no linkage), forgery
// and tamper rejection, revocation semantics (accumulator vs verifier-local),
// credential updates, and the KTY self-distinction mechanics of §8.2.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "crypto/drbg.h"
#include "common/errors.h"
#include "bigint/prime.h"
#include "gsig/accumulator.h"
#include "gsig/acjt.h"
#include "gsig/gsig.h"
#include "gsig/kty.h"

namespace shs::gsig {
namespace {

using num::BigInt;

using Factory =
    std::function<std::unique_ptr<GsigGroup>(num::RandomSource&)>;

struct SchemeCase {
  std::string name;
  Factory make;
};

const SchemeCase kSchemes[] = {
    {"acjt",
     [](num::RandomSource& rng) -> std::unique_ptr<GsigGroup> {
       return AcjtGsig::create(algebra::ParamLevel::kTest, rng);
     }},
    {"kty",
     [](num::RandomSource& rng) -> std::unique_ptr<GsigGroup> {
       return KtyGsig::create(algebra::ParamLevel::kTest, rng);
     }},
};

class GsigAllSchemes : public ::testing::TestWithParam<SchemeCase> {
 protected:
  GsigAllSchemes() : rng_(to_bytes("gsig-" + GetParam().name)) {
    scheme_ = GetParam().make(rng_);
  }
  crypto::HmacDrbg rng_;
  std::unique_ptr<GsigGroup> scheme_;
};

TEST_P(GsigAllSchemes, SignVerifyOpenRoundtrip) {
  auto alice = scheme_->admit(1, rng_);
  auto bob = scheme_->admit(2, rng_);
  scheme_->update_credential(alice);
  const Bytes msg = to_bytes("handshake payload");
  const Bytes sig_a = scheme_->sign(alice, msg, {}, rng_);
  const Bytes sig_b = scheme_->sign(bob, msg, {}, rng_);
  EXPECT_NO_THROW(scheme_->verify(msg, sig_a, {}));
  EXPECT_NO_THROW(scheme_->verify(msg, sig_b, {}));
  EXPECT_EQ(scheme_->open(msg, sig_a, {}), 1u);
  EXPECT_EQ(scheme_->open(msg, sig_b, {}), 2u);
}

TEST_P(GsigAllSchemes, SignaturesAreUnlinkableBlobs) {
  auto alice = scheme_->admit(1, rng_);
  const Bytes msg = to_bytes("m");
  const Bytes s1 = scheme_->sign(alice, msg, {}, rng_);
  const Bytes s2 = scheme_->sign(alice, msg, {}, rng_);
  EXPECT_NE(s1, s2);  // randomized
  // Without a session tag there is no distinction tag to correlate by.
  EXPECT_TRUE(scheme_->distinction_tag(s1).empty() ||
              scheme_->distinction_tag(s1) != scheme_->distinction_tag(s2));
}

TEST_P(GsigAllSchemes, WrongMessageRejected) {
  auto alice = scheme_->admit(1, rng_);
  const Bytes sig = scheme_->sign(alice, to_bytes("paid $5"), {}, rng_);
  EXPECT_THROW(scheme_->verify(to_bytes("paid $5000"), sig, {}), VerifyError);
}

TEST_P(GsigAllSchemes, TamperedSignatureRejected) {
  auto alice = scheme_->admit(1, rng_);
  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme_->sign(alice, msg, {}, rng_);
  // Flip a byte at several depths of the blob.
  for (std::size_t pos :
       {std::size_t{0}, sig.size() / 3, sig.size() / 2, sig.size() - 1}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_THROW(scheme_->verify(msg, bad, {}), VerifyError) << pos;
  }
  EXPECT_THROW(scheme_->verify(msg, Bytes(10, 0), {}), VerifyError);
  EXPECT_THROW(scheme_->verify(msg, {}, {}), VerifyError);
}

TEST_P(GsigAllSchemes, NonMemberCannotForge) {
  auto alice = scheme_->admit(1, rng_);
  // A "credential" with random garbage secrets must not produce anything
  // verifiable (sign may throw or produce an invalid signature).
  MemberCredential fake;
  fake.id = 99;
  fake.secret = alice.secret;
  fake.secret[fake.secret.size() / 2] ^= 0xff;  // corrupt a secret value
  const Bytes msg = to_bytes("m");
  try {
    const Bytes sig = scheme_->sign(fake, msg, {}, rng_);
    EXPECT_THROW(scheme_->verify(msg, sig, {}), VerifyError);
  } catch (const Error&) {
    SUCCEED();  // rejected even earlier
  }
}

TEST_P(GsigAllSchemes, RevokedMemberSignaturesRejected) {
  auto alice = scheme_->admit(1, rng_);
  auto bob = scheme_->admit(2, rng_);
  scheme_->update_credential(alice);
  scheme_->update_credential(bob);
  const Bytes msg = to_bytes("m");

  scheme_->revoke(2);
  scheme_->update_credential(alice);  // alice refreshes her state
  EXPECT_THROW(scheme_->update_credential(bob), VerifyError);  // bob is out

  const Bytes sig_a = scheme_->sign(alice, msg, {}, rng_);
  EXPECT_NO_THROW(scheme_->verify(msg, sig_a, {}));

  // Bob's stale credential cannot produce a fresh valid signature.
  try {
    const Bytes sig_b = scheme_->sign(bob, msg, {}, rng_);
    EXPECT_THROW(scheme_->verify(msg, sig_b, {}), VerifyError);
  } catch (const Error&) {
    SUCCEED();
  }
}

TEST_P(GsigAllSchemes, StaleSignatureRejectedAfterRevocationEvent) {
  auto alice = scheme_->admit(1, rng_);
  auto bob = scheme_->admit(2, rng_);
  scheme_->update_credential(alice);
  const Bytes msg = to_bytes("m");
  const Bytes old_sig = scheme_->sign(alice, msg, {}, rng_);
  EXPECT_NO_THROW(scheme_->verify(msg, old_sig, {}));

  scheme_->revoke(2);  // revocation state moves on
  EXPECT_THROW(scheme_->verify(msg, old_sig, {}), VerifyError);
  // ...but the GA can still open the historical signature.
  EXPECT_EQ(scheme_->open(msg, old_sig, {}), 1u);
  (void)bob;
}

TEST_P(GsigAllSchemes, DuplicateAdmitAndBadRevokeThrow) {
  (void)scheme_->admit(1, rng_);
  EXPECT_THROW((void)scheme_->admit(1, rng_), ProtocolError);
  EXPECT_THROW(scheme_->revoke(42), ProtocolError);
  scheme_->revoke(1);
  EXPECT_THROW(scheme_->revoke(1), ProtocolError);
}

INSTANTIATE_TEST_SUITE_P(Schemes, GsigAllSchemes,
                         ::testing::ValuesIn(kSchemes),
                         [](const auto& info) { return info.param.name; });

// ---- KTY self-distinction specifics (paper §8.2) ---------------------------

class KtySelfDistinction : public ::testing::Test {
 protected:
  KtySelfDistinction() : rng_(to_bytes("kty-sd")) {
    scheme_ = KtyGsig::create(algebra::ParamLevel::kTest, rng_);
  }
  crypto::HmacDrbg rng_;
  std::unique_ptr<KtyGsig> scheme_;
};

TEST_F(KtySelfDistinction, CommonTagSignaturesVerifyAndOpen) {
  auto alice = scheme_->admit(1, rng_);
  const Bytes tag = to_bytes("session-transcript-hash");
  const Bytes msg = to_bytes("delta");
  const Bytes sig = scheme_->sign(alice, msg, tag, rng_);
  EXPECT_NO_THROW(scheme_->verify(msg, sig, tag));
  EXPECT_EQ(scheme_->open(msg, sig, tag), 1u);
  EXPECT_FALSE(scheme_->distinction_tag(sig).empty());
}

TEST_F(KtySelfDistinction, SameSignerSameSessionHasEqualT6) {
  // The heart of self-distinction: one signer playing two roles in the
  // same session is exposed by the repeated T6 = T7^{x'}.
  auto alice = scheme_->admit(1, rng_);
  auto bob = scheme_->admit(2, rng_);
  const Bytes tag = to_bytes("session");
  const Bytes sig_a1 = scheme_->sign(alice, to_bytes("m1"), tag, rng_);
  const Bytes sig_a2 = scheme_->sign(alice, to_bytes("m2"), tag, rng_);
  const Bytes sig_b = scheme_->sign(bob, to_bytes("m3"), tag, rng_);
  EXPECT_EQ(scheme_->distinction_tag(sig_a1),
            scheme_->distinction_tag(sig_a2));
  EXPECT_NE(scheme_->distinction_tag(sig_a1),
            scheme_->distinction_tag(sig_b));
}

TEST_F(KtySelfDistinction, DifferentSessionsRemainUnlinkable) {
  auto alice = scheme_->admit(1, rng_);
  const Bytes sig1 = scheme_->sign(alice, to_bytes("m"), to_bytes("s1"), rng_);
  const Bytes sig2 = scheme_->sign(alice, to_bytes("m"), to_bytes("s2"), rng_);
  // T7 differs across sessions, so T6 values do not correlate.
  EXPECT_NE(scheme_->distinction_tag(sig1), scheme_->distinction_tag(sig2));
}

TEST_F(KtySelfDistinction, WrongSessionTagRejected) {
  auto alice = scheme_->admit(1, rng_);
  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme_->sign(alice, msg, to_bytes("session-1"), rng_);
  EXPECT_THROW(scheme_->verify(msg, sig, to_bytes("session-2")), VerifyError);
  EXPECT_THROW(scheme_->verify(msg, sig, {}), VerifyError);
  const Bytes plain = scheme_->sign(alice, msg, {}, rng_);
  EXPECT_THROW(scheme_->verify(msg, plain, to_bytes("session-1")),
               VerifyError);
}

TEST_F(KtySelfDistinction, AcjtRefusesSessionTags) {
  crypto::HmacDrbg rng(to_bytes("acjt-sd"));
  auto acjt = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = acjt->admit(1, rng);
  EXPECT_FALSE(acjt->supports_self_distinction());
  EXPECT_THROW((void)acjt->sign(alice, to_bytes("m"), to_bytes("tag"), rng),
               ProtocolError);
}

// ---- Accumulator specifics --------------------------------------------------

class AccumulatorTest : public ::testing::Test {
 protected:
  AccumulatorTest()
      : rng_(to_bytes("accumulator")),
        pair_(algebra::QrGroup::standard(algebra::ParamLevel::kTest)) {}
  crypto::HmacDrbg rng_;
  std::pair<algebra::QrGroup, algebra::QrGroupSecret> pair_;
};

TEST_F(AccumulatorTest, WitnessesTrackAddsAndRemoves) {
  auto& [group, secret] = pair_;
  Accumulator acc(group, secret, rng_);
  const BigInt e1 = num::random_prime(160, rng_);
  const BigInt e2 = num::random_prime(160, rng_);
  const BigInt e3 = num::random_prime(160, rng_);

  BigInt w1 = acc.add(e1);
  EXPECT_EQ(group.exp(w1, e1), acc.value());

  BigInt w2 = acc.add(e2);
  w1 = Accumulator::update_witness(group, w1, e1,
                                   std::span(acc.log()).subspan(1));
  EXPECT_EQ(group.exp(w1, e1), acc.value());
  EXPECT_EQ(group.exp(w2, e2), acc.value());

  BigInt w3 = acc.add(e3);
  acc.remove(e2);
  w1 = Accumulator::update_witness(group, w1, e1,
                                   std::span(acc.log()).subspan(2));
  w3 = Accumulator::update_witness(group, w3, e3,
                                   std::span(acc.log()).subspan(3));
  EXPECT_EQ(group.exp(w1, e1), acc.value());
  EXPECT_EQ(group.exp(w3, e3), acc.value());

  // The removed member cannot update through its own removal.
  EXPECT_THROW((void)Accumulator::update_witness(
                   group, w2, e2, std::span(acc.log()).subspan(3)),
               VerifyError);
}

TEST_F(AccumulatorTest, HistoricalValuesRetrievable) {
  auto& [group, secret] = pair_;
  Accumulator acc(group, secret, rng_);
  const BigInt v0 = acc.value();
  const BigInt e = num::random_prime(160, rng_);
  (void)acc.add(e);
  EXPECT_EQ(acc.value_at(0), v0);
  EXPECT_EQ(acc.value_at(1), acc.value());
  EXPECT_THROW((void)acc.value_at(7), ProtocolError);
}

}  // namespace
}  // namespace shs::gsig
