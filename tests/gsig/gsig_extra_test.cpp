// Additional GSIG coverage: signature-size bounds (load-bearing for the
// handshake's shape-uniform Phase III), update-bundle semantics,
// credential serialization robustness, parameter-profile structure, and
// cross-scheme/cross-group isolation.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "common/errors.h"
#include "gsig/acjt.h"
#include "gsig/kty.h"
#include "gsig/sigma.h"

namespace shs::gsig {
namespace {

TEST(GsigParams, CompactProfileKeepsStructuralInequalities) {
  for (std::size_t lp : {128u, 256u, 512u}) {
    const GsigParams p = GsigParams::for_prime_bits(lp);
    // lambda1 > eps(lambda2 + k) + 2, gamma2 > lambda1 + 2,
    // gamma1 > eps(gamma2 + k) + 2 — the soundness chain.
    EXPECT_GT(p.lambda1, eps_bits(p.lambda2 + kChallengeBits) + 2) << lp;
    EXPECT_GT(p.gamma2, p.lambda1 + 2) << lp;
    EXPECT_GT(p.gamma1, eps_bits(p.gamma2 + kChallengeBits) + 2) << lp;
  }
}

TEST(GsigSizes, SignaturesStayWithinDeclaredBound) {
  crypto::HmacDrbg rng(to_bytes("size-bound"));
  auto acjt = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto kty = KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto a_cred = acjt->admit(1, rng);
  auto k_cred = kty->admit(1, rng);
  const Bytes msg = to_bytes("m");
  for (int i = 0; i < 10; ++i) {
    EXPECT_LE(acjt->sign(a_cred, msg, {}, rng).size(),
              acjt->signature_size_bound());
    EXPECT_LE(kty->sign(k_cred, msg, {}, rng).size(),
              kty->signature_size_bound());
    EXPECT_LE(kty->sign(k_cred, msg, to_bytes("tag"), rng).size(),
              kty->signature_size_bound());
  }
}

TEST(GsigUpdates, ExportApplyRoundtripAcrossManyEvents) {
  crypto::HmacDrbg rng(to_bytes("update-rt"));
  auto scheme = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(1, rng);
  // 4 more members join, 2 leave — alice applies updates in two chunks.
  for (MemberId id = 2; id <= 5; ++id) (void)scheme->admit(id, rng);
  const Bytes chunk1 = scheme->export_update(alice.revision);
  scheme->apply_update(alice, chunk1);
  EXPECT_EQ(alice.revision, scheme->revision());

  scheme->revoke(3);
  scheme->revoke(4);
  const Bytes chunk2 = scheme->export_update(alice.revision);
  scheme->apply_update(alice, chunk2);
  EXPECT_EQ(alice.revision, scheme->revision());

  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme->sign(alice, msg, {}, rng);
  EXPECT_NO_THROW(scheme->verify(msg, sig, {}));
  EXPECT_EQ(scheme->open(msg, sig, {}), 1u);
}

TEST(GsigUpdates, EmptyUpdateIsNoOp) {
  crypto::HmacDrbg rng(to_bytes("update-empty"));
  auto scheme = KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(1, rng);
  const auto before = alice.revision;
  scheme->apply_update(alice, scheme->export_update(alice.revision));
  EXPECT_EQ(alice.revision, before);
}

TEST(GsigUpdates, FutureRevisionRejected) {
  crypto::HmacDrbg rng(to_bytes("update-future"));
  auto scheme = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  EXPECT_THROW((void)scheme->export_update(5), ProtocolError);
}

TEST(GsigIsolation, SignaturesDoNotVerifyAcrossGroups) {
  crypto::HmacDrbg rng(to_bytes("isolation"));
  auto g1 = KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto g2 = KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = g1->admit(1, rng);
  const Bytes msg = to_bytes("m");
  const Bytes sig = g1->sign(alice, msg, {}, rng);
  EXPECT_NO_THROW(g1->verify(msg, sig, {}));
  EXPECT_THROW(g2->verify(msg, sig, {}), VerifyError);
  EXPECT_THROW((void)g2->open(msg, sig, {}), VerifyError);
}

TEST(GsigIsolation, CredentialFromOtherGroupCannotSignHere) {
  crypto::HmacDrbg rng(to_bytes("cross-cred"));
  auto g1 = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto g2 = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = g1->admit(1, rng);
  const Bytes msg = to_bytes("m");
  // Signing "under" g2 with g1's credential must fail somewhere on the
  // path (decode failure or verification failure) — never verify.
  try {
    const Bytes sig = g2->sign(alice, msg, {}, rng);
    EXPECT_THROW(g2->verify(msg, sig, {}), VerifyError);
  } catch (const Error&) {
    SUCCEED();
  }
}

TEST(GsigRobustness, TruncatedCredentialRejected) {
  crypto::HmacDrbg rng(to_bytes("trunc-cred"));
  auto scheme = KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(1, rng);
  MemberCredential broken = alice;
  broken.secret.resize(broken.secret.size() / 2);
  EXPECT_THROW((void)scheme->sign(broken, to_bytes("m"), {}, rng), Error);
}

TEST(GsigRobustness, OpenOfGarbageThrows) {
  crypto::HmacDrbg rng(to_bytes("open-garbage"));
  auto scheme = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  (void)scheme->admit(1, rng);
  EXPECT_THROW((void)scheme->open(to_bytes("m"), Bytes(64, 0xab), {}),
               VerifyError);
}

TEST(GsigAnonymity, OpenerSeparationFromIssuer) {
  // The KTY tracing trapdoor x is per-member; revoking one member must
  // not expose another member's signatures to VLR linking.
  crypto::HmacDrbg rng(to_bytes("vlr-scope"));
  auto scheme = KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(1, rng);
  auto bob = scheme->admit(2, rng);
  scheme->revoke(2);
  scheme->update_credential(alice);
  const Bytes msg = to_bytes("m");
  const Bytes sig = scheme->sign(alice, msg, {}, rng);
  EXPECT_NO_THROW(scheme->verify(msg, sig, {}));  // alice unaffected
  (void)bob;
}

}  // namespace
}  // namespace shs::gsig
