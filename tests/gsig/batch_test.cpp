// Batch verification property tests: for every mix of valid and invalid
// signatures, sigma_verify_batch must return exactly the verdict vector
// individual verification produces — the random-linear-combination fold
// is a throughput optimization, never a semantics change. The adversarial
// case plants a forged signature that survives every cheap check (so it
// reaches the fold) and demands the bisection fallback isolate exactly
// it; that test fails if the fallback is ever removed.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/errors.h"
#include "crypto/drbg.h"
#include "gsig/acjt.h"
#include "gsig/batch.h"
#include "gsig/gsig.h"
#include "gsig/kty.h"

namespace shs::gsig {
namespace {

using Factory =
    std::function<std::unique_ptr<GsigGroup>(num::RandomSource&)>;

struct SchemeCase {
  std::string name;
  Factory make;
};

const SchemeCase kSchemes[] = {
    {"acjt",
     [](num::RandomSource& rng) -> std::unique_ptr<GsigGroup> {
       return AcjtGsig::create(algebra::ParamLevel::kTest, rng);
     }},
    {"kty",
     [](num::RandomSource& rng) -> std::unique_ptr<GsigGroup> {
       return KtyGsig::create(algebra::ParamLevel::kTest, rng);
     }},
};

class BatchAllSchemes : public ::testing::TestWithParam<SchemeCase> {
 protected:
  BatchAllSchemes() : rng_(to_bytes("batch-" + GetParam().name)) {
    scheme_ = GetParam().make(rng_);
  }

  crypto::HmacDrbg rng_;
  std::unique_ptr<GsigGroup> scheme_;
};

/// One signed message with its ground-truth verdict from verify().
struct Sample {
  Bytes message;
  Bytes signature;
  Bytes tag;
  bool valid = false;
};

bool individual_verdict(const GsigGroup& scheme, const Sample& s) {
  try {
    scheme.verify(s.message, s.signature, s.tag);
    return true;
  } catch (const Error&) {
    return false;
  }
}

/// Emulates the BatchVerifier's two stages over `samples`: cheap checks
/// resolve immediately, survivors fold. Returns the final verdicts.
std::vector<bool> batch_verdicts(const GsigGroup& scheme,
                                 const std::vector<Sample>& samples,
                                 num::RandomSource& rng,
                                 BatchStats* stats = nullptr) {
  std::vector<bool> verdict(samples.size(), false);
  std::vector<SigmaCheck> checks;
  std::vector<std::size_t> owner;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    try {
      auto check = scheme.prepare_verify(samples[i].message,
                                         samples[i].signature,
                                         samples[i].tag);
      if (!check.has_value()) {
        verdict[i] = true;
        continue;
      }
      checks.push_back(*std::move(check));
      owner.push_back(i);
    } catch (const Error&) {
    }
  }
  const std::vector<bool> folded = sigma_verify_batch(checks, rng, stats);
  for (std::size_t c = 0; c < checks.size(); ++c) {
    verdict[owner[c]] = folded[c];
  }
  return verdict;
}

/// A signature that passes every cheap check (prepare_verify yields a
/// SigmaCheck) but fails the group equations: a single response byte is
/// perturbed, which leaves the Fiat-Shamir hash (over commitments, not
/// responses) and the interval checks intact. Searches from the tail of
/// the blob, where the responses are serialized.
Sample forge_fold_reaching(const GsigGroup& scheme, Sample valid) {
  for (std::size_t back = 1; back <= valid.signature.size(); ++back) {
    Sample forged = valid;
    forged.signature[forged.signature.size() - back] ^= 0x01;
    forged.valid = false;
    try {
      auto check = scheme.prepare_verify(forged.message, forged.signature,
                                         forged.tag);
      if (check.has_value() && !sigma_check(*check)) return forged;
    } catch (const Error&) {
    }
  }
  ADD_FAILURE() << "could not craft a fold-reaching forgery";
  return valid;
}

TEST_P(BatchAllSchemes, RandomMixesMatchIndividualVerification) {
  std::vector<MemberCredential> members;
  for (MemberId id = 1; id <= 3; ++id) {
    members.push_back(scheme_->admit(id, rng_));
  }
  // ACJT accumulator admits invalidate earlier credentials.
  for (MemberCredential& c : members) scheme_->update_credential(c);
  for (int round = 0; round < 4; ++round) {
    std::vector<Sample> samples;
    for (std::size_t i = 0; i < 8; ++i) {
      Sample s;
      s.message = to_bytes("msg-" + std::to_string(round) + "-" +
                           std::to_string(i % 3));
      // Session tags are a scheme-2 (KTY self-distinction) feature.
      if (GetParam().name == "kty" && i % 2 == 0) {
        s.tag = to_bytes("tag-" + std::to_string(i));
      }
      s.signature = scheme_->sign(members[i % members.size()], s.message,
                                  s.tag, rng_);
      s.valid = true;
      switch (i % 4) {
        case 1:  // wrong message
          s.message = to_bytes("other");
          s.valid = false;
          break;
        case 2:  // truncated blob
          s.signature.resize(s.signature.size() / 2);
          s.valid = false;
          break;
        default:
          break;
      }
      samples.push_back(std::move(s));
    }
    BatchStats stats;
    const std::vector<bool> batch =
        batch_verdicts(*scheme_, samples, rng_, &stats);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ(batch[i], individual_verdict(*scheme_, samples[i]))
          << GetParam().name << " round " << round << " sample " << i;
      EXPECT_EQ(batch[i], samples[i].valid);
    }
    EXPECT_GE(stats.folds, 1u);
  }
}

TEST_P(BatchAllSchemes, HonestBatchesNeverFalselyReject) {
  auto alice = scheme_->admit(1, rng_);
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < 6; ++i) {
    Sample s;
    s.message = to_bytes("honest-" + std::to_string(i));
    s.signature = scheme_->sign(alice, s.message, {}, rng_);
    s.valid = true;
    samples.push_back(std::move(s));
  }
  // Distinct coefficient draws every attempt: a fold that rejects honest
  // proofs under any coin choice is a soundness-argument bug (the ±1
  // discrepancies must cancel deterministically).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto coins = crypto::HmacDrbg::from_seed("batch-coins", seed);
    BatchStats stats;
    const std::vector<bool> batch =
        batch_verdicts(*scheme_, samples, coins, &stats);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_TRUE(batch[i]) << "seed " << seed << " sample " << i;
    }
    EXPECT_EQ(stats.bisections, 0u);
    EXPECT_EQ(stats.individual, 0u);
  }
}

TEST_P(BatchAllSchemes, ForgedSignatureInBatchIsolatedByBisection) {
  auto alice = scheme_->admit(1, rng_);
  constexpr std::size_t kBatch = 9;
  constexpr std::size_t kForged = 4;
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < kBatch; ++i) {
    Sample s;
    s.message = to_bytes("batch-member-" + std::to_string(i));
    s.signature = scheme_->sign(alice, s.message, {}, rng_);
    s.valid = true;
    if (i == kForged) s = forge_fold_reaching(*scheme_, std::move(s));
    samples.push_back(std::move(s));
  }
  ASSERT_FALSE(individual_verdict(*scheme_, samples[kForged]));

  BatchStats stats;
  const std::vector<bool> batch =
      batch_verdicts(*scheme_, samples, rng_, &stats);
  for (std::size_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(batch[i], i != kForged)
        << "bisection must reject exactly the forged signature";
  }
  // The forgery reached the fold (prepare passed), so the only way to the
  // correct verdict vector is the bisection fallback. If the fallback is
  // ever reverted (fold failure -> reject all), the valid batch-mates
  // above turn false and this test fails.
  EXPECT_GE(stats.bisections, 1u);
  EXPECT_GE(stats.individual, 1u);
}

TEST_P(BatchAllSchemes, SingletonAndEmptyBatches) {
  auto alice = scheme_->admit(1, rng_);
  BatchStats stats;
  EXPECT_TRUE(sigma_verify_batch({}, rng_, &stats).empty());
  EXPECT_EQ(stats.folds, 0u);

  Sample s;
  s.message = to_bytes("solo");
  s.signature = scheme_->sign(alice, s.message, {}, rng_);
  s.valid = true;
  const std::vector<bool> batch = batch_verdicts(*scheme_, {s}, rng_, &stats);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch[0]);
  // A singleton skips the fold entirely: one direct sigma_check.
  EXPECT_EQ(stats.folds, 0u);
  EXPECT_EQ(stats.individual, 1u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, BatchAllSchemes,
                         ::testing::ValuesIn(kSchemes),
                         [](const auto& info) { return info.param.name; });

// Checks from different groups (ACJT and KTY instances in one wave) must
// bucket by modulus and still match individual verification.
TEST(BatchMixedGroups, BucketsByGroupAndMatchesIndividual) {
  crypto::HmacDrbg rng(to_bytes("batch-mixed"));
  auto acjt = AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto kty = KtyGsig::create(algebra::ParamLevel::kTest, rng);
  auto a1 = acjt->admit(1, rng);
  auto k1 = kty->admit(1, rng);

  std::vector<const GsigGroup*> schemes;
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < 6; ++i) {
    const GsigGroup& scheme = i % 2 == 0 ? static_cast<GsigGroup&>(*acjt)
                                         : static_cast<GsigGroup&>(*kty);
    Sample s;
    s.message = to_bytes("mixed-" + std::to_string(i));
    s.signature = scheme.sign(i % 2 == 0 ? a1 : k1, s.message, {}, rng);
    s.valid = i != 3;
    if (i == 3) s.message = to_bytes("tampered");
    schemes.push_back(&scheme);
    samples.push_back(std::move(s));
  }

  std::vector<bool> verdict(samples.size(), false);
  std::vector<SigmaCheck> checks;
  std::vector<std::size_t> owner;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    try {
      auto check = schemes[i]->prepare_verify(samples[i].message,
                                              samples[i].signature,
                                              samples[i].tag);
      ASSERT_TRUE(check.has_value());
      checks.push_back(*std::move(check));
      owner.push_back(i);
    } catch (const Error&) {
    }
  }
  BatchStats stats;
  const std::vector<bool> folded = sigma_verify_batch(checks, rng, &stats);
  for (std::size_t c = 0; c < folded.size(); ++c) {
    verdict[owner[c]] = folded[c];
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(verdict[i], samples[i].valid) << "sample " << i;
  }
  // Distinct moduli fold separately; kTest instances may share a modulus
  // (and then legitimately share one fold), so only pin the lower bound.
  EXPECT_GE(stats.folds, 1u);
  EXPECT_EQ(stats.checks, checks.size());
}

}  // namespace
}  // namespace shs::gsig
