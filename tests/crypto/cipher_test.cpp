// AES (FIPS 197 / NIST SP 800-38A vectors), CTR mode, AEAD
// (encrypt-then-MAC) tamper-rejection, and HMAC-DRBG behaviour.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/errors.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/drbg.h"

namespace shs::crypto {
namespace {

TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes(key).encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes192) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes(key).encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes(key).encrypt_block(block.data());
  EXPECT_EQ(to_hex(block), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15, 0)), MathError);
  EXPECT_THROW(Aes(Bytes(0, 0)), MathError);
  EXPECT_THROW(Aes(Bytes(33, 0)), MathError);
}

TEST(AesCtr, Sp80038aVector) {
  // NIST SP 800-38A F.5.1 (CTR-AES128).
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes ct = aes_ctr(key, iv, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
}

TEST(AesCtr, EncryptDecryptSymmetry) {
  HmacDrbg rng(to_bytes("ctr-test"));
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(16);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
    const Bytes pt = rng.bytes(len);
    EXPECT_EQ(aes_ctr(key, iv, aes_ctr(key, iv, pt)), pt) << len;
  }
  EXPECT_THROW((void)aes_ctr(key, Bytes(8, 0), Bytes{1}), MathError);
}

TEST(AesCtr, CounterCarryPropagates) {
  // IV ending in ff..ff must roll over rather than repeat keystream.
  const Bytes key(16, 0x42);
  const Bytes iv = from_hex("00000000000000000000000000ffffff");
  const Bytes zeros(64, 0);
  const Bytes ks = aes_ctr(key, iv, zeros);
  // Blocks must be pairwise distinct.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_NE(Bytes(ks.begin() + 16 * i, ks.begin() + 16 * (i + 1)),
                Bytes(ks.begin() + 16 * j, ks.begin() + 16 * (j + 1)));
    }
  }
}

TEST(Aead, SealOpenRoundtrip) {
  HmacDrbg rng(to_bytes("aead-test"));
  const Aead aead(to_bytes("shared key"));
  for (std::size_t len : {0u, 1u, 31u, 32u, 1000u}) {
    const Bytes pt = rng.bytes(len);
    const Bytes sealed = aead.seal(pt, rng);
    EXPECT_EQ(sealed.size(), len + Aead::kOverhead);
    EXPECT_EQ(aead.open(sealed), pt) << len;
  }
}

TEST(Aead, TamperingAnywhereRejected) {
  HmacDrbg rng(to_bytes("aead-tamper"));
  const Aead aead(to_bytes("key"));
  const Bytes sealed = aead.seal(to_bytes("attack at dawn"), rng);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_THROW((void)aead.open(bad), VerifyError) << "byte " << i;
  }
  Bytes truncated = sealed;
  truncated.pop_back();
  EXPECT_THROW((void)aead.open(truncated), VerifyError);
  EXPECT_THROW((void)aead.open(Bytes(10, 0)), VerifyError);
}

TEST(Aead, WrongKeyRejected) {
  HmacDrbg rng(to_bytes("aead-key"));
  const Aead a(to_bytes("key-a"));
  const Aead b(to_bytes("key-b"));
  const Bytes sealed = a.seal(to_bytes("secret"), rng);
  EXPECT_THROW((void)b.open(sealed), VerifyError);
}

TEST(Aead, RandomCiphertextHasCorrectShape) {
  HmacDrbg rng(to_bytes("aead-random"));
  const Bytes fake = Aead::random_ciphertext(42, rng);
  EXPECT_EQ(fake.size(), 42 + Aead::kOverhead);
  // A random ciphertext must (overwhelmingly) fail to open.
  const Aead aead(to_bytes("key"));
  EXPECT_THROW((void)aead.open(fake), VerifyError);
}

TEST(HmacDrbg, DeterministicForSameSeed) {
  HmacDrbg a(to_bytes("seed"));
  HmacDrbg b(to_bytes("seed"));
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.bytes(7), b.bytes(7));
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a(to_bytes("seed-1"));
  HmacDrbg b(to_bytes("seed-2"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
  HmacDrbg c = HmacDrbg::from_seed("label", 1);
  HmacDrbg d = HmacDrbg::from_seed("label", 2);
  EXPECT_NE(c.bytes(32), d.bytes(32));
}

TEST(HmacDrbg, SuccessiveOutputsDiffer) {
  HmacDrbg rng(to_bytes("stream"));
  EXPECT_NE(rng.bytes(32), rng.bytes(32));
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a(to_bytes("seed"));
  HmacDrbg b(to_bytes("seed"));
  (void)a.bytes(16);
  (void)b.bytes(16);
  b.reseed(to_bytes("extra entropy"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(HmacDrbg, ByteDistributionSanity) {
  // Crude uniformity check: all byte values appear in a 64KiB stream.
  HmacDrbg rng(to_bytes("distribution"));
  const Bytes stream = rng.bytes(64 * 1024);
  bool seen[256] = {};
  for (std::uint8_t v : stream) seen[v] = true;
  for (int i = 0; i < 256; ++i) EXPECT_TRUE(seen[i]) << i;
}

}  // namespace
}  // namespace shs::crypto
