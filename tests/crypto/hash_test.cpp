// Hash and MAC tests against published test vectors (FIPS 180-4 examples,
// RFC 4231 HMAC vectors, RFC 5869 HKDF vectors) plus streaming-interface
// behaviour across block boundaries.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/errors.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace shs::crypto {
namespace {

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::digest(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::digest(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      to_hex(Sha256::digest(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAcrossBlockBoundaries) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i));
  for (std::size_t split : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 128u, 299u}) {
    Sha256 h;
    h.update(BytesView(data).first(split));
    h.update(BytesView(data).subspan(split));
    EXPECT_EQ(h.finish(), Sha256::digest(data)) << split;
  }
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update(to_bytes("x"));
  (void)h.finish();
  EXPECT_THROW(h.update(to_bytes("y")), ProtocolError);
  EXPECT_THROW((void)h.finish(), ProtocolError);
}

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha1::digest(to_bytes(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(Sha1::digest(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(
      to_hex(Sha1::digest(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = to_bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes msg = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes msg = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Sha1Rfc2202) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac(HashAlg::kSha1, key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  const Bytes key = to_bytes("k");
  const Bytes msg = to_bytes("m");
  Bytes tag = hmac_sha256(key, msg);
  EXPECT_TRUE(hmac_verify(HashAlg::kSha256, key, msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_verify(HashAlg::kSha256, key, msg, tag));
  EXPECT_FALSE(hmac_verify(HashAlg::kSha256, key, to_bytes("m2"),
                           hmac_sha256(key, msg)));
  EXPECT_FALSE(hmac_verify(HashAlg::kSha256, to_bytes("k2"), msg,
                           hmac_sha256(key, msg)));
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(ikm, {}, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, DifferentInfosDiverge) {
  const Bytes ikm = to_bytes("input key material");
  EXPECT_NE(hkdf(ikm, {}, to_bytes("a"), 32), hkdf(ikm, {}, to_bytes("b"), 32));
  EXPECT_THROW((void)hkdf(ikm, {}, {}, 256 * 32), MathError);
}

}  // namespace
}  // namespace shs::crypto
