// TraceRecorder mechanics: deterministic timestamps under ManualClock,
// ring wrap with oldest-first snapshots and a drop counter, whole-session
// sampling, torn-slot rejection under concurrent writers, and the Chrome
// trace-event export shape.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "service/clock.h"

namespace shs::obs {
namespace {

using service::ManualClock;
using std::chrono::nanoseconds;

TEST(Trace, RecordsCarryClockStampsAndArguments) {
  ManualClock clock;
  TraceOptions to;
  to.capacity = 64;
  to.clock = &clock;
  TraceRecorder trace(to);

  trace.record(TraceEvent::kSessionOpened, 7, /*a=*/4);
  clock.advance(nanoseconds(1500));
  trace.record(TraceEvent::kRoundAdvanced, 7, /*a=*/0, /*b=*/1,
               /*dur_ns=*/250, /*modexp=*/12);

  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, TraceEvent::kSessionOpened);
  EXPECT_EQ(records[0].sid, 7u);
  EXPECT_EQ(records[0].ts_ns, 0u);
  EXPECT_EQ(records[0].a, 4u);
  EXPECT_EQ(records[1].type, TraceEvent::kRoundAdvanced);
  EXPECT_EQ(records[1].ts_ns, 1500u);
  EXPECT_EQ(records[1].dur_ns, 250u);
  EXPECT_EQ(records[1].b, 1u);
  EXPECT_EQ(records[1].modexp, 12u);
  EXPECT_EQ(trace.recorded(), 2u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, CapacityRoundsUpToAPowerOfTwo) {
  TraceOptions to;
  to.capacity = 5;
  EXPECT_EQ(TraceRecorder(to).capacity(), 8u);
  to.capacity = 0;
  EXPECT_EQ(TraceRecorder(to).capacity(), 1u);
}

TEST(Trace, FullRingOverwritesOldestAndCountsDrops) {
  ManualClock clock;
  TraceOptions to;
  to.capacity = 8;
  to.clock = &clock;
  TraceRecorder trace(to);

  for (std::uint64_t i = 0; i < 12; ++i) {
    trace.record(TraceEvent::kFrameIn, 1, /*a=*/i);
  }
  EXPECT_EQ(trace.recorded(), 12u);
  EXPECT_EQ(trace.dropped(), 4u);

  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, 4 + i) << "oldest surviving record first";
  }
}

TEST(Trace, SamplingKeepsWholeSessionsDeterministically) {
  TraceOptions to;
  to.capacity = 64;
  to.sample_every = 4;
  TraceRecorder trace(to);

  EXPECT_TRUE(trace.wants(0)) << "connection-scoped records always kept";
  EXPECT_TRUE(trace.wants(4));
  EXPECT_TRUE(trace.wants(8));
  EXPECT_FALSE(trace.wants(5));
  EXPECT_FALSE(trace.wants(7));

  trace.record(TraceEvent::kSessionOpened, 5);
  trace.record(TraceEvent::kSessionOpened, 4);
  trace.record(TraceEvent::kConnAccepted, 0, /*a=*/9);
  EXPECT_EQ(trace.recorded(), 2u);
  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sid, 4u);
  EXPECT_EQ(records[1].sid, 0u);
}

TEST(Trace, SamplingSkipsAreCounted) {
  TraceOptions to;
  to.capacity = 16;
  to.sample_every = 2;
  TraceRecorder trace(to);

  // wants() is a pure query (callers use it to skip attribution work);
  // only record() calls the filter rejects are counted, so the skip rate
  // on /metrics reflects actual discarded record attempts.
  EXPECT_TRUE(trace.wants(2));
  EXPECT_FALSE(trace.wants(3));
  EXPECT_EQ(trace.sampling_skipped(), 0u);

  trace.record(TraceEvent::kSessionOpened, 3);
  trace.record(TraceEvent::kRoundAdvanced, 5);
  trace.record(TraceEvent::kSessionOpened, 2);  // sampled: kept
  EXPECT_EQ(trace.recorded(), 1u);
  EXPECT_EQ(trace.sampling_skipped(), 2u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, ChromeExportWithShardLanesLabelsProcesses) {
  ManualClock clock;
  TraceOptions to;
  to.capacity = 64;
  to.clock = &clock;
  TraceRecorder trace(to);

  // sids 1 and 4 home on shards 0 and 1 of a 2-shard server; sid-0
  // records (connection scope, batch verify) take the extra lane.
  trace.record(TraceEvent::kSessionOpened, 1);
  trace.record(TraceEvent::kSessionOpened, 4);
  trace.record(TraceEvent::kConnAccepted, 0, /*a=*/11);

  const std::string json = trace.to_chrome_json(2);
  // One process_name metadata event per shard lane plus the
  // connections lane.
  EXPECT_NE(json.find("\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"args\": {\"name\": \"shard 0\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2, \"args\": {\"name\": \"shard 1\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\": 3, \"args\": {\"name\": \"connections\"}"),
            std::string::npos);
  // pid = 1 + (sid - 1) % num_shards for sessions; N + 1 for sid 0.
  EXPECT_NE(json.find("\"pid\": 1, \"tid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2, \"tid\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 3, \"tid\": 11"), std::string::npos);

  // The legacy (0-shard) export stays exactly the pre-shard shape: no
  // metadata events, sessions pid 1 / connections pid 2.
  const std::string legacy = trace.to_chrome_json();
  EXPECT_EQ(legacy.find("process_name"), std::string::npos);
  EXPECT_NE(legacy.find("\"pid\": 1, \"tid\": 4"), std::string::npos);
  EXPECT_NE(legacy.find("\"pid\": 2, \"tid\": 11"), std::string::npos);
}

// The TSan target: writers on several threads racing the ring (small
// enough to wrap constantly) while a reader snapshots. Every surviving
// record must be internally consistent — each writer stores a == b, so a
// mixed record would surface as a mismatch.
TEST(Trace, ConcurrentWritersNeverYieldTornRecords) {
  TraceOptions to;
  to.capacity = 64;
  TraceRecorder trace(to);

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&trace, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t token = (static_cast<std::uint64_t>(w) << 32) | i;
        trace.record(TraceEvent::kFrameIn, 1, token, token);
      }
    });
  }
  // On a single-CPU host the main thread can burn through its passes
  // before any writer is scheduled, so keep snapshotting until at least
  // one record is accepted — once the writers finish, the quiescent ring
  // is fully readable, so the loop always terminates.
  std::size_t snapshots = 0;
  for (int pass = 0; pass < 200 || snapshots == 0; ++pass) {
    for (const TraceRecord& r : trace.snapshot()) {
      EXPECT_EQ(r.a, r.b) << "torn record leaked through the seqlock";
      ++snapshots;
    }
    if (snapshots == 0) std::this_thread::yield();
  }
  for (auto& t : writers) t.join();
  EXPECT_GT(snapshots, 0u);

  const auto final_records = trace.snapshot();
  EXPECT_EQ(final_records.size(), trace.capacity());
  EXPECT_EQ(trace.recorded(), kWriters * kPerWriter);
  for (const TraceRecord& r : final_records) EXPECT_EQ(r.a, r.b);
}

TEST(Trace, ChromeExportShapesSpansAndInstants) {
  ManualClock clock;
  TraceOptions to;
  to.capacity = 64;
  to.clock = &clock;
  TraceRecorder trace(to);

  trace.record(TraceEvent::kSessionOpened, 3, /*a=*/2);
  clock.advance(nanoseconds(5000));
  trace.record(TraceEvent::kPhaseCompleted, 3, /*a=*/1, /*b=*/0,
               /*dur_ns=*/5000, /*modexp=*/40);
  trace.record(TraceEvent::kConnAccepted, 0, /*a=*/11);

  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  // The phase record is a complete span starting back at the open.
  EXPECT_NE(json.find("\"name\": \"phase\", \"ph\": \"X\", \"ts\": 0.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"dur\": 5.000"), std::string::npos);
  // Instants carry ph "i"; sessions live under pid 1, connections pid 2.
  EXPECT_NE(json.find("\"name\": \"session opened\", \"ph\": \"i\""),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1, \"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2, \"tid\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"modexp\": 40"), std::string::npos);

  // Every record type renders a distinct args.event name.
  std::set<std::string> names;
  for (int t = 0; t <= 12; ++t) {
    names.insert(to_string(static_cast<TraceEvent>(t)));
  }
  EXPECT_EQ(names.size(), 13u);
}

}  // namespace
}  // namespace shs::obs
