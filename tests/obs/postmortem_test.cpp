// PostmortemEngine: bundle assembly, the redaction gate, and the
// deliberate key-leak canary. The canary is the point of the suite — a
// scanner that never fires is indistinguishable from one that works, so
// we register a fake secret, leak it through a section producer (raw and
// hex), and prove the bundle is suppressed before any byte hits disk.
#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>

#include "common/bytes.h"
#include "obs/postmortem.h"
#include "obs/redact.h"
#include "service/clock.h"

namespace shs::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Fresh temp dir per test so bundle files never collide across tests.
std::string make_dir(const char* tag) {
  std::string dir = ::testing::TempDir() + "shs_postmortem_" + tag;
  // The engine mkdirs on first capture; stale files from a previous run
  // are removed by unique seq-0 paths being overwritten (trunc).
  return dir;
}

/// RAII: the audit is process-global; leave it how we found it.
struct AuditGuard {
  AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(true);
  }
  ~AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(false);
  }
};

TEST(PostmortemEngine, CaptureWritesBundleWithSectionsInOrder) {
  service::ManualClock clock;
  clock.advance(std::chrono::nanoseconds(12345));
  const std::string dir = make_dir("order");
  PostmortemEngine engine({.dir = dir, .max_bundles = 8, .clock = &clock});
  engine.add_section("config", [] { return std::string("{\"shards\":2}"); });
  engine.add_section("health", [] { return std::string("{\"ok\":true}"); });

  const auto result = engine.capture("stall-pump-shard0");
  EXPECT_TRUE(result.written);
  EXPECT_FALSE(result.suppressed);
  EXPECT_FALSE(result.capped);
  EXPECT_EQ(result.path, dir + "/postmortem-0-stall-pump-shard0.json");
  EXPECT_TRUE(file_exists(result.path));
  EXPECT_EQ(slurp(result.path), result.bundle);
  EXPECT_EQ(result.bundle,
            "{\"reason\":\"stall-pump-shard0\",\"seq\":0,\"ts_ns\":12345,"
            "\"sections\":{\"config\":{\"shards\":2},"
            "\"health\":{\"ok\":true}}}");
  EXPECT_EQ(engine.captured(), 1u);
  EXPECT_EQ(engine.suppressed(), 0u);
}

TEST(PostmortemEngine, ReasonIsSanitizedForTheFilename) {
  const std::string dir = make_dir("sanitize");
  PostmortemEngine engine({.dir = dir});
  const auto result = engine.capture("../evil");
  ASSERT_TRUE(result.written);
  // Path traversal characters all collapse to '-'; the JSON body keeps
  // the original (escaped) reason.
  EXPECT_EQ(result.path, dir + "/postmortem-0----evil.json");
  EXPECT_NE(result.bundle.find("\"reason\":\"../evil\""), std::string::npos);
}

TEST(PostmortemEngine, MaxBundlesCapsDiskWrites) {
  const std::string dir = make_dir("cap");
  PostmortemEngine engine({.dir = dir, .max_bundles = 2});
  EXPECT_TRUE(engine.capture("a").written);
  EXPECT_TRUE(engine.capture("b").written);
  const auto third = engine.capture("c");
  EXPECT_FALSE(third.written);
  EXPECT_TRUE(third.capped);
  EXPECT_FALSE(third.bundle.empty());  // bundle still assembled for callers
  EXPECT_EQ(engine.captured(), 2u);
}

TEST(PostmortemEngine, DeliberateKeyLeakCanaryIsSuppressed) {
  AuditGuard audit_guard;
  const std::string secret = "canary-master-key-0123456789abcdef";
  RedactionAudit::instance().add_secret(
      BytesView(reinterpret_cast<const std::uint8_t*>(secret.data()),
                secret.size()),
      "canary-key");

  const std::string dir = make_dir("canary");
  PostmortemEngine engine({.dir = dir});
  // The leaky section: a producer that (wrongly) serializes the raw key.
  engine.add_section("leak",
                     [&secret] { return "\"" + secret + "\""; });

  const auto result = engine.capture("canary");
  EXPECT_FALSE(result.written);
  EXPECT_TRUE(result.suppressed);
  EXPECT_TRUE(result.path.empty());
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].label, "canary-key");
  EXPECT_EQ(result.violations[0].encoding, "raw");
  // Nothing reached disk: not under the canary reason, not at all.
  EXPECT_FALSE(file_exists(dir + "/postmortem-0-canary.json"));
  EXPECT_EQ(engine.captured(), 0u);
  EXPECT_EQ(engine.suppressed(), 1u);
  // The process audit recorded it too (surface = "postmortem").
  EXPECT_GE(RedactionAudit::instance().violations(), 1u);
  bool saw_surface = false;
  for (const auto& v : RedactionAudit::instance().violation_log()) {
    if (v.surface == "postmortem") saw_surface = true;
  }
  EXPECT_TRUE(saw_surface);
}

TEST(PostmortemEngine, HexEncodedLeakIsAlsoCaught) {
  AuditGuard audit_guard;
  const std::string secret = "hex-canary-secret-material";
  RedactionAudit::instance().add_secret(
      BytesView(reinterpret_cast<const std::uint8_t*>(secret.data()),
                secret.size()),
      "hex-canary");

  std::string hex;
  static const char* digits = "0123456789abcdef";
  for (unsigned char c : secret) {
    hex.push_back(digits[c >> 4]);
    hex.push_back(digits[c & 0xf]);
  }

  const std::string dir = make_dir("hex");
  PostmortemEngine engine({.dir = dir});
  engine.add_section("leak", [&hex] { return "\"" + hex + "\""; });

  const auto result = engine.capture("hex");
  EXPECT_TRUE(result.suppressed);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].encoding, "hex");
}

TEST(PostmortemEngine, CleanBundlePassesWithAuditEnabled) {
  AuditGuard audit_guard;
  const std::string secret = "registered-but-never-leaked-key";
  RedactionAudit::instance().add_secret(
      BytesView(reinterpret_cast<const std::uint8_t*>(secret.data()),
                secret.size()),
      "quiet-key");

  const std::string dir = make_dir("clean");
  PostmortemEngine engine({.dir = dir});
  engine.add_section("metrics", [] { return std::string("{\"opened\":3}"); });

  const auto result = engine.capture("clean");
  EXPECT_TRUE(result.written);
  EXPECT_FALSE(result.suppressed);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_TRUE(RedactionAudit::instance().scan(slurp(result.path)).empty());
}

TEST(PostmortemEngine, ConsumeSigtermIsOneShot) {
  PostmortemEngine::install_sigterm_trigger();
  EXPECT_FALSE(PostmortemEngine::consume_sigterm());
  ::raise(SIGTERM);  // handler only sets the flag — we are still alive
  EXPECT_TRUE(PostmortemEngine::consume_sigterm());
  EXPECT_FALSE(PostmortemEngine::consume_sigterm());
}

}  // namespace
}  // namespace shs::obs
