// The observability scrape listener over real sockets: a TransportServer
// with the endpoint enabled serves GET /metrics (Prometheus text with
// histogram buckets and both gauges) and GET /trace (Chrome trace JSON)
// from its one event-loop thread, answers unknown paths 404 and non-GET
// methods 405, and keeps serving scrapes while handshake traffic runs.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <string>

#include "obs/trace.h"
#include "transport/client.h"
#include "transport/fixture.h"
#include "transport/server.h"
#include "transport/socket.h"

namespace shs::transport {
namespace {

using testing::group_factory;
using testing::make_request;

/// One blocking HTTP exchange: send `request` verbatim, read to EOF.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  Fd fd = tcp_connect("127.0.0.1", port, std::chrono::milliseconds(2000));
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd.get(), request.data() + sent, request.size() - sent, 0);
    if (n <= 0) throw TransportError(errno_message("send"));
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf, sizeof buf, 0);
    if (n < 0) throw TransportError(errno_message("recv"));
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(ObsEndpoint, ServesMetricsAndTraceFromTheEventLoop) {
  obs::TraceRecorder trace;
  ServerOptions so;
  so.obs_endpoint = true;
  service::ServiceOptions svc;
  svc.trace = &trace;
  TransportServer server(so, svc, group_factory());
  server.start();
  ASSERT_GT(server.obs_port(), 0);
  ASSERT_NE(server.obs_port(), server.port());

  // Complete one real handshake so counters and trace records are live.
  Client client({.port = server.port()});
  client.connect();
  client.open(make_request(2, false, "obs-endpoint"));
  client.run();

  const std::string metrics = get(server.obs_port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("shs_sessions_opened_total 1"), std::string::npos);
  EXPECT_NE(metrics.find("shs_sessions_confirmed_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE shs_sessions_active gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE shs_connections_active gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("shs_session_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("shs_session_latency_us_count 1"),
            std::string::npos);

  // Query strings are stripped before routing (Prometheus adds them).
  const std::string with_query =
      get(server.obs_port(), "/metrics?format=prometheus");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);

  const std::string trace_body = get(server.obs_port(), "/trace");
  EXPECT_NE(trace_body.find("200 OK"), std::string::npos);
  EXPECT_NE(trace_body.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(trace_body.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(trace_body.find("session opened"), std::string::npos);
  EXPECT_NE(trace_body.find("conn accepted"), std::string::npos);

  ASSERT_NE(server.obs_endpoint(), nullptr);
  EXPECT_EQ(server.obs_endpoint()->requests_served(), 3u);
  server.shutdown();
}

TEST(ObsEndpoint, RejectsUnknownPathsAndMethods) {
  ServerOptions so;
  so.obs_endpoint = true;
  TransportServer server(so, service::ServiceOptions{}, group_factory());
  server.start();

  EXPECT_NE(get(server.obs_port(), "/nope").find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(http_exchange(server.obs_port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  // Garbage that is not HTTP at all gets 400 or a dropped connection.
  const std::string garbage = http_exchange(server.obs_port(), "BLURB\r\n\r\n");
  EXPECT_TRUE(garbage.empty() ||
              garbage.find("400 Bad Request") != std::string::npos)
      << garbage;
  server.shutdown();
}

TEST(ObsEndpoint, ContentLengthAndScrapeSelfMetrics) {
  ServerOptions so;
  so.obs_endpoint = true;
  TransportServer server(so, service::ServiceOptions{}, group_factory());
  server.start();

  // Every response — including errors — carries an accurate
  // Content-Length (curl -f and scrapers depend on it).
  for (const char* path : {"/metrics", "/trace", "/sessions", "/missing"}) {
    const std::string response = get(server.obs_port(), path);
    const std::size_t pos = response.find("Content-Length: ");
    ASSERT_NE(pos, std::string::npos) << path;
    const std::size_t eol = response.find("\r\n", pos);
    const std::size_t declared = static_cast<std::size_t>(
        std::stoull(response.substr(pos + 16, eol - pos - 16)));
    const std::size_t body_start = response.find("\r\n\r\n") + 4;
    EXPECT_EQ(response.size() - body_start, declared) << path;
  }

  // The endpoint watches itself: the second scrape reports the first's
  // per-route counters on the very surface being scraped.
  const std::string metrics = get(server.obs_port(), "/metrics");
  EXPECT_NE(
      metrics.find("shs_obs_scrape_requests_total{path=\"/metrics\"} 1"),
      std::string::npos);
  EXPECT_NE(
      metrics.find("shs_obs_scrape_requests_total{path=\"/trace\"} 1"),
      std::string::npos);
  EXPECT_NE(metrics.find("# TYPE shs_obs_scrape_duration_us_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("shs_obs_scrape_bytes_total{path=\"/sessions\"}"),
            std::string::npos);
  server.shutdown();
}

TEST(ObsEndpoint, DisabledByDefault) {
  TransportServer server(ServerOptions{}, service::ServiceOptions{},
                         group_factory());
  server.start();
  EXPECT_EQ(server.obs_port(), 0);
  EXPECT_EQ(server.obs_endpoint(), nullptr);
  server.shutdown();
}

}  // namespace
}  // namespace shs::transport
