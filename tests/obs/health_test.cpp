// The health plane's deterministic core: QuantileSketch window/exemplar
// mechanics, the SloTracker's name-major Prometheus series, and the
// HealthMonitor watchdog state machine under a ManualClock — the two
// properties that make the watchdog trustworthy are pinned here: an
// idle-but-responsive shard NEVER flips unhealthy no matter how long it
// idles, and a wedged component (work pending, no beats) flips within
// one check interval.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "service/clock.h"

namespace shs::obs {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(QuantileSketch, EmptyWindowIsAllZero) {
  QuantileSketch sketch(16);
  const auto s = sketch.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.window, 0u);
  EXPECT_EQ(s.p50.value_us, 0u);
  EXPECT_EQ(s.p999.exemplar_sid, 0u);
}

TEST(QuantileSketch, QuantilesCarryTheirExemplarSid) {
  QuantileSketch sketch(128);
  // 100 samples 1..100us, sid = value * 10 so the exemplar is checkable.
  for (std::uint64_t v = 1; v <= 100; ++v) sketch.record(v, v * 10);
  const auto s = sketch.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.window, 100u);
  // pick() rounds (permille * (n-1) + 500) / 1000 over the sorted window.
  EXPECT_EQ(s.p50.value_us, 51u);
  EXPECT_EQ(s.p50.exemplar_sid, 510u);
  EXPECT_EQ(s.p95.value_us, 95u);
  EXPECT_EQ(s.p95.exemplar_sid, 950u);
  EXPECT_EQ(s.p99.value_us, 99u);
  EXPECT_EQ(s.p999.value_us, 100u);
  EXPECT_EQ(s.p999.exemplar_sid, 1000u);
}

TEST(QuantileSketch, WindowSlidesOverOldSamples) {
  QuantileSketch sketch(8);  // power of two, 8 slots
  for (std::uint64_t v = 0; v < 100; ++v) sketch.record(1000, 1);
  for (std::uint64_t v = 0; v < 8; ++v) sketch.record(5, 42);
  const auto s = sketch.summarize();
  EXPECT_EQ(s.count, 108u);
  EXPECT_EQ(s.window, 8u);  // only the last 8 survive
  EXPECT_EQ(s.p999.value_us, 5u);
  EXPECT_EQ(s.p999.exemplar_sid, 42u);
}

TEST(QuantileSketch, ConcurrentWritersNeverTearTheSummary) {
  QuantileSketch sketch(64);
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&sketch, t] {
      for (std::uint64_t i = 0; i < 5000; ++i) {
        // Every thread writes value == sid so a torn slot that slipped
        // through the seqlock check would show up as a mismatch.
        const std::uint64_t v = static_cast<std::uint64_t>(t) * 10000 + i;
        sketch.record(v, v);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const auto s = sketch.summarize();
    EXPECT_EQ(s.p50.value_us, s.p50.exemplar_sid);
    EXPECT_EQ(s.p999.value_us, s.p999.exemplar_sid);
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(sketch.count(), 20000u);
}

TEST(SloTracker, FillSnapshotIsNameMajorWithExemplarSeries) {
  SloTracker tracker({.num_shards = 2, .window = 16});
  tracker.record(0, SloDimension::kHandshake, 250, 7);
  tracker.record(1, SloDimension::kChannelRelay, 40, 12);

  MetricsSnapshot snap;
  tracker.fill_snapshot(&snap);
  // 2 shards x 4 dims x 4 quantiles for each of the two paired series,
  // plus one samples_total per (shard, dim).
  ASSERT_EQ(snap.scalars.size(), 2u * 4u * 4u * 2u + 2u * 4u);

  // Name-major: all latency rows, then all exemplar rows, then counts.
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(snap.scalars[i].name, "shs_slo_latency_us") << i;
  }
  for (std::size_t i = 32; i < 64; ++i) {
    EXPECT_EQ(snap.scalars[i].name, "shs_slo_exemplar_sid") << i;
  }
  for (std::size_t i = 64; i < 72; ++i) {
    EXPECT_EQ(snap.scalars[i].name, "shs_slo_samples_total") << i;
  }

  // The handshake sample surfaces with its sid as the paired exemplar.
  bool found = false;
  for (const auto& e : snap.scalars) {
    if (e.name == "shs_slo_exemplar_sid" &&
        e.labels == "shard=\"0\",dim=\"handshake\",q=\"p50\"") {
      EXPECT_EQ(e.value, 7u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SloTracker, ToJsonNestsShardThenDimension) {
  SloTracker tracker({.num_shards = 1, .window = 8});
  tracker.record(0, SloDimension::kRekeyLag, 99, 3);
  const std::string json = tracker.to_json();
  EXPECT_NE(json.find("\"shard0\":{"), std::string::npos);
  EXPECT_NE(json.find("\"rekey_lag\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":{\"us\":99,\"sid\":3}"), std::string::npos);
}

class HealthMonitorTest : public ::testing::Test {
 protected:
  HealthMonitorTest()
      : monitor_({.num_shards = 2,
                  .clock = &clock_,
                  .stall_after = milliseconds(1000),
                  .unhealthy_after = 2}) {}

  service::ManualClock clock_;
  HealthMonitor monitor_;
};

TEST_F(HealthMonitorTest, FreshMonitorIsHealthy) {
  EXPECT_TRUE(monitor_.healthy());
  EXPECT_EQ(monitor_.overall(), HealthState::kOk);
  EXPECT_TRUE(monitor_.check().empty());
}

TEST_F(HealthMonitorTest, IdleComponentsNeverFlipNoMatterHowLong) {
  // Hours pass; the event loop keeps ticking but the pump, verifier and
  // authority hub never beat — and never raised pending. Idle, not
  // stalled: the watchdog must stay green.
  for (int i = 0; i < 100; ++i) {
    clock_.advance(std::chrono::minutes(6));
    monitor_.beat(0, HealthComponent::kEventLoop);
    monitor_.beat(1, HealthComponent::kEventLoop);
    EXPECT_TRUE(monitor_.check().empty());
    EXPECT_TRUE(monitor_.healthy());
  }
}

TEST_F(HealthMonitorTest, SilentEventLoopStallsEvenWhenIdle) {
  // The loop is "always beats": run(tick) guarantees a pass per tick, so
  // silence IS a stall regardless of pending work.
  clock_.advance(milliseconds(1500));
  monitor_.beat(1, HealthComponent::kEventLoop);  // shard 1 is fine
  const auto stalls = monitor_.check();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].shard, 0u);
  EXPECT_EQ(stalls[0].component, HealthComponent::kEventLoop);
  EXPECT_EQ(stalls[0].state, HealthState::kDegraded);
  EXPECT_FALSE(monitor_.healthy());
}

TEST_F(HealthMonitorTest, WedgedPumpFlipsWithinOneCheckAndEscalates) {
  monitor_.set_pending(0, HealthComponent::kPump, true);
  clock_.advance(milliseconds(1001));  // just past stall_after
  monitor_.beat(0, HealthComponent::kEventLoop);
  monitor_.beat(1, HealthComponent::kEventLoop);

  // First check past the threshold: degraded immediately.
  auto stalls = monitor_.check();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].component, HealthComponent::kPump);
  EXPECT_EQ(stalls[0].state, HealthState::kDegraded);
  EXPECT_EQ(monitor_.overall(), HealthState::kDegraded);

  // Second consecutive miss: unhealthy (unhealthy_after = 2).
  clock_.advance(milliseconds(200));
  monitor_.beat(0, HealthComponent::kEventLoop);
  monitor_.beat(1, HealthComponent::kEventLoop);
  stalls = monitor_.check();
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].state, HealthState::kUnhealthy);
  EXPECT_EQ(monitor_.state(0, HealthComponent::kPump),
            HealthState::kUnhealthy);
  EXPECT_EQ(monitor_.stalls_detected(), 1u);  // one cell left ok once

  // A transition is reported once, not on every subsequent check.
  clock_.advance(milliseconds(200));
  monitor_.beat(0, HealthComponent::kEventLoop);
  monitor_.beat(1, HealthComponent::kEventLoop);
  EXPECT_TRUE(monitor_.check().empty());
}

TEST_F(HealthMonitorTest, BeatOrDrainRecovers) {
  monitor_.set_pending(0, HealthComponent::kBatchVerifier, true);
  clock_.advance(milliseconds(1500));
  monitor_.beat(0, HealthComponent::kEventLoop);
  monitor_.beat(1, HealthComponent::kEventLoop);
  ASSERT_EQ(monitor_.check().size(), 1u);
  EXPECT_FALSE(monitor_.healthy());

  // The verifier flushes: beat + pending cleared. Next check heals.
  monitor_.beat(0, HealthComponent::kBatchVerifier);
  monitor_.set_pending(0, HealthComponent::kBatchVerifier, false);
  EXPECT_TRUE(monitor_.check().empty());  // recovery is not a "stall"
  EXPECT_TRUE(monitor_.healthy());
  EXPECT_EQ(monitor_.state(0, HealthComponent::kBatchVerifier),
            HealthState::kOk);
}

TEST_F(HealthMonitorTest, OnStallFiresOncePerTransition) {
  std::vector<HealthMonitor::Stall> seen;
  monitor_.set_on_stall(
      [&seen](const HealthMonitor::Stall& s) { seen.push_back(s); });
  monitor_.set_pending(1, HealthComponent::kAuthorityHub, true);
  for (int i = 0; i < 4; ++i) {
    clock_.advance(milliseconds(1100));
    monitor_.beat(0, HealthComponent::kEventLoop);
    monitor_.beat(1, HealthComponent::kEventLoop);
    monitor_.check();
  }
  // degraded then unhealthy — and silence afterwards.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].state, HealthState::kDegraded);
  EXPECT_EQ(seen[1].state, HealthState::kUnhealthy);
  EXPECT_EQ(seen[1].shard, 1u);
  EXPECT_EQ(seen[1].component, HealthComponent::kAuthorityHub);
}

TEST_F(HealthMonitorTest, HealthzJsonNamesTheSickCells) {
  EXPECT_NE(monitor_.healthz_json().find("\"status\":\"ok\""),
            std::string::npos);
  monitor_.set_pending(0, HealthComponent::kPump, true);
  clock_.advance(milliseconds(1200));
  monitor_.beat(0, HealthComponent::kEventLoop);
  monitor_.beat(1, HealthComponent::kEventLoop);
  monitor_.check();
  const std::string json = monitor_.healthz_json();
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("{\"shard\":0,\"component\":\"pump\",\"state\":"
                      "\"degraded\"}"),
            std::string::npos);
}

TEST_F(HealthMonitorTest, FillSnapshotExportsEveryCell) {
  MetricsSnapshot snap;
  monitor_.fill_snapshot(&snap);
  // 2 shards x 4 components + checks + stalls counters.
  ASSERT_EQ(snap.scalars.size(), 2u * 4u + 2u);
  EXPECT_EQ(snap.scalars[0].name, "shs_shard_health");
  EXPECT_EQ(snap.scalars[0].labels, "shard=\"0\",component=\"event_loop\"");
  EXPECT_EQ(snap.scalars.back().name, "shs_health_stalls_detected_total");
}

}  // namespace
}  // namespace shs::obs
