// Structured logger + redaction unit coverage: line format, level
// suppression, byte/secret placeholders, escaping, and the RedactionAudit
// registry (raw + hex scanning, minimum secret length, violation
// accounting, and the logger surface being audited at emit time).
#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "obs/log.h"
#include "obs/redact.h"
#include "service/clock.h"

namespace shs::obs {
namespace {

using service::ManualClock;

/// Every audit test runs against the process-wide singleton, so scope the
/// enabled state and registry to the test.
struct AuditGuard {
  AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(true);
  }
  ~AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(false);
  }
};

Bytes secret_bytes() { return to_bytes("super-secret-handshake-key-0123"); }

TEST(Log, LinesAreStructuredKeyValueText) {
  ManualClock clock;
  CaptureSink sink;
  Logger::Options lo;
  lo.level = LogLevel::kDebug;
  lo.sink = &sink;
  lo.clock = &clock;
  Logger logger(lo);

  clock.advance(std::chrono::nanoseconds(42));
  logger.info("service", "session opened").u64("sid", 7).i64("delta", -3);

  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].line,
            "ts_ns=42 level=info comp=service msg=\"session opened\" "
            "sid=7 delta=-3");
  EXPECT_EQ(sink.records()[0].level, LogLevel::kInfo);
  EXPECT_EQ(logger.emitted(), 1u);
}

TEST(Log, SuppressedLevelsFormatNothing) {
  CaptureSink sink;
  Logger::Options lo;
  lo.level = LogLevel::kWarn;
  lo.sink = &sink;
  Logger logger(lo);

  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.debug("svc", "noise").u64("sid", 1);
  (void)logger.info("svc", "noise too");
  (void)logger.warn("svc", "kept");
  EXPECT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(logger.emitted(), 1u);

  lo.level = LogLevel::kOff;
  Logger off(lo);
  EXPECT_FALSE(off.enabled(LogLevel::kError));
}

TEST(Log, BytesRenderAsLengthPlaceholderOnly) {
  CaptureSink sink;
  Logger::Options lo;
  lo.sink = &sink;
  Logger logger(lo);

  const Bytes payload = to_bytes("mac-tag-bytes");
  logger.info("svc", "frame").bytes("payload", payload);

  ASSERT_EQ(sink.records().size(), 1u);
  const std::string& line = sink.records()[0].line;
  EXPECT_NE(line.find("payload=<13 bytes>"), std::string::npos);
  EXPECT_EQ(line.find("mac-tag"), std::string::npos);
}

TEST(Log, RedactedFieldsRenderAsRedactedPlaceholder) {
  CaptureSink sink;
  Logger::Options lo;
  lo.sink = &sink;
  Logger logger(lo);

  const Redacted<Bytes> key(secret_bytes());
  EXPECT_EQ(key.size(), secret_bytes().size());
  EXPECT_EQ(key.reveal(), secret_bytes());

  logger.info("svc", "derived").secret("key", key);
  ASSERT_EQ(sink.records().size(), 1u);
  const std::string& line = sink.records()[0].line;
  EXPECT_NE(line.find("key=<redacted 31>"), std::string::npos);
  EXPECT_EQ(line.find("super-secret"), std::string::npos);
}

TEST(Log, ControlAndNonAsciiBytesAreEscaped) {
  CaptureSink sink;
  Logger::Options lo;
  lo.sink = &sink;
  Logger logger(lo);

  (void)logger.info("svc", std::string("a\nb\xff") + "\"q\"");
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_NE(sink.records()[0].line.find("msg=\"a\\x0ab\\xff\\\"q\\\"\""),
            std::string::npos);
}

TEST(Redact, DisabledAuditRegistersNothing) {
  RedactionAudit& audit = RedactionAudit::instance();
  audit.reset();
  audit.enable(false);
  audit_secret(secret_bytes(), "key");
  EXPECT_EQ(audit.secret_count(), 0u);
  audit_output("anything at all", "log");
  EXPECT_EQ(audit.violations(), 0u);
}

TEST(Redact, ScanFindsRawAndHexEncodings) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();
  const Bytes secret = secret_bytes();
  audit.add_secret(secret, "session-key");
  EXPECT_EQ(audit.secret_count(), 1u);
  audit.add_secret(secret, "session-key");  // deduplicated
  EXPECT_EQ(audit.secret_count(), 1u);

  const std::string raw(secret.begin(), secret.end());
  auto hits = audit.scan("prefix " + raw + " suffix");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].label, "session-key");
  EXPECT_EQ(hits[0].encoding, "raw");

  hits = audit.scan("hex: " + to_hex(secret));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].encoding, "hex");

  std::string upper = to_hex(secret);
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  EXPECT_EQ(audit.scan("HEX: " + upper).size(), 1u);

  EXPECT_TRUE(audit.scan("nothing to see").empty());
  EXPECT_EQ(audit.violations(), 0u) << "scan is a pure query";
}

TEST(Redact, TooShortSecretsAreNotRegistered) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();
  audit.add_secret(to_bytes("short"), "tiny");
  EXPECT_EQ(audit.secret_count(), 0u);
}

TEST(Redact, CheckAccumulatesViolationsWithSurface) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();
  const Bytes secret = secret_bytes();
  audit.add_secret(secret, "k-prime");

  audit.check("clean line", "log");
  EXPECT_EQ(audit.violations(), 0u);
  audit.check("leak " + to_hex(secret), "metrics");
  EXPECT_EQ(audit.violations(), 1u);
  const auto log = audit.violation_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].label, "k-prime");
  EXPECT_EQ(log[0].encoding, "hex");
  EXPECT_EQ(log[0].surface, "metrics");

  audit.reset();
  EXPECT_EQ(audit.violations(), 0u);
  EXPECT_EQ(audit.secret_count(), 0u);
}

// The leak path the design cannot prevent — hexing a secret into an
// ordinary string field — is exactly what the audit catches at emit.
TEST(Redact, LoggerEmissionIsAuditedAndCatchesDeliberateLeaks) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();
  const Bytes secret = secret_bytes();
  audit_secret(secret, "session-key");

  CaptureSink sink;
  Logger::Options lo;
  lo.sink = &sink;
  Logger logger(lo);

  logger.info("svc", "fine").u64("sid", 1);
  EXPECT_EQ(audit.violations(), 0u);

  logger.info("svc", "oops").str("key_hex", to_hex(secret));
  ASSERT_EQ(audit.violations(), 1u);
  EXPECT_EQ(audit.violation_log()[0].surface, "log");
}

}  // namespace
}  // namespace shs::obs
