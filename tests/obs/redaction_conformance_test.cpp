// The redaction-invariant conformance sweep — the headline artifact of
// the observability layer.
//
// Every scenario hosts full handshakes in a RendezvousService with every
// diagnostics surface wide open: tracing unsampled, debug logging (which
// formats per-frame traffic), and the process RedactionAudit enabled so
// all key material registers itself at creation (core/handshake.cpp).
// The sweep covers both schemes, m in {2,4,8} (override with
// SHS_REDACTION_M=2,4), clean and adversarial wires (the PR-2 fault
// library), and the deadline-expiry path. After each run the log, trace
// export, Prometheus exposition and metrics JSON are scanned: no
// registered secret — k*, k', CGKD group keys, MAC tags, group-signature
// bytes, derived session keys — may appear raw or hex-encoded anywhere.
// Observability must add zero distinguishing power beyond the wire.
//
// The harness itself is also tested in the negative direction: a
// deliberately hexed session key *is* flagged, so a passing sweep means
// the surfaces are clean, not that the scanner is blind.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/fixture.h"
#include "net/faults.h"
#include "obs/log.h"
#include "obs/redact.h"
#include "obs/trace.h"
#include "service/service.h"

namespace shs::obs {
namespace {

using core::HandshakeOptions;
using core::testing::TestGroup;
using service::ManualClock;
using service::RendezvousService;
using service::ServiceOptions;
using service::SessionState;

TestGroup& redact_group() {
  static auto* group = [] {
    auto* g = new TestGroup("redact", core::GroupConfig{});
    for (core::MemberId id = 1; id <= 8; ++id) g->admit(id);
    return g;
  }();
  return *group;
}

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    std::size_t m, bool scheme2, std::string_view seed) {
  HandshakeOptions options;
  options.self_distinction = scheme2;
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  parts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(redact_group().member(i).handshake_party(
        i, m, options, to_bytes(seed)));
  }
  return parts;
}

/// m values under sweep; SHS_REDACTION_M=2,4 trims the grid (TSan runs).
std::vector<std::size_t> sweep_ms() {
  const char* env = std::getenv("SHS_REDACTION_M");
  const std::string spec = env != nullptr && *env != '\0' ? env : "2,4,8";
  std::vector<std::size_t> ms;
  std::size_t value = 0;
  for (const char c : spec + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
    } else if (value != 0) {
      ms.push_back(value);
      value = 0;
    }
  }
  return ms;
}

struct AuditGuard {
  AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(true);
  }
  ~AuditGuard() {
    RedactionAudit::instance().reset();
    RedactionAudit::instance().enable(false);
  }
};

std::string violation_summary() {
  std::string out;
  for (const auto& v : RedactionAudit::instance().violation_log()) {
    out += "\n  " + v.label + " (" + v.encoding + ") leaked into " + v.surface;
  }
  return out;
}

/// Runs one hosted scenario with every surface enabled, then scans all of
/// them. Returns the trace snapshot so callers can pin scenario-specific
/// records.
std::vector<TraceRecord> run_scenario(std::size_t m, bool scheme2,
                                      std::string_view seed,
                                      net::Adversary* adversary) {
  ManualClock clock;
  TraceOptions to;
  to.capacity = 1 << 12;
  to.clock = &clock;
  TraceRecorder trace(to);
  CaptureSink sink;
  Logger::Options lo;
  lo.level = LogLevel::kDebug;
  lo.sink = &sink;
  lo.clock = &clock;
  Logger logger(lo);

  ServiceOptions so;
  so.clock = &clock;
  so.adversary = adversary;
  so.session_deadline = std::chrono::milliseconds(1000);
  so.trace = &trace;
  so.logger = &logger;
  RendezvousService svc(so);

  const std::uint64_t sid = svc.open_session(make_parts(m, scheme2, seed));
  svc.pump();
  if (svc.state(sid) != SessionState::kDone) {
    // Faults starved a round; the deadline reaps it (the expiry path is
    // a diagnostics surface of its own).
    clock.advance(std::chrono::milliseconds(1500));
    EXPECT_EQ(svc.expire_stalled(), 1u);
    EXPECT_EQ(svc.state(sid), SessionState::kExpired);
  }

  // Logger lines were audited at emit; scan the remaining surfaces.
  (void)svc.metrics_prometheus();  // audits itself as "metrics"
  audit_output(svc.metrics_json(), "metrics_json");
  const std::vector<TraceRecord> records = trace.snapshot();
  (void)trace.to_chrome_json();  // audits itself as "trace"

  EXPECT_GT(logger.emitted(), 0u) << "debug logging was not exercised";
  EXPECT_FALSE(records.empty()) << "tracing was not exercised";
  return records;
}

bool has_record(const std::vector<TraceRecord>& records, TraceEvent type) {
  for (const TraceRecord& r : records) {
    if (r.type == type) return true;
  }
  return false;
}

TEST(RedactionConformance, AdversarySweepLeaksNothingOnAnySurface) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();

  for (const std::size_t m : sweep_ms()) {
    for (const bool scheme2 : {false, true}) {
      const std::string tag =
          "m" + std::to_string(m) + (scheme2 ? "-s2" : "-s1");
      {
        SCOPED_TRACE("clean-" + tag);
        const auto records =
            run_scenario(m, scheme2, "redact-clean-" + tag, nullptr);
        EXPECT_TRUE(has_record(records, TraceEvent::kSessionOpened));
        EXPECT_TRUE(has_record(records, TraceEvent::kSessionConfirmed));
        EXPECT_TRUE(has_record(records, TraceEvent::kPhaseCompleted));
      }
      {
        SCOPED_TRACE("lossy-" + tag);
        net::DropFault drop(0x5eed ^ m, {.per_message = 0.2});
        net::TamperFault tamper(0x7a ^ m, {.probability = 0.2});
        net::ChainAdversary chain({&drop, &tamper});
        run_scenario(m, scheme2, "redact-lossy-" + tag, &chain);
      }
      {
        SCOPED_TRACE("replay-" + tag);
        net::ReplayFault replay(0x4e9 ^ m, {.cross_round = 0.3});
        run_scenario(m, scheme2, "redact-replay-" + tag, &replay);
      }
    }
  }

  EXPECT_GT(audit.secret_count(), 0u)
      << "no key material ever registered — the sweep audited nothing";
  EXPECT_EQ(audit.violations(), 0u) << violation_summary();
}

/// Loops frames back into the service except one (round, position),
/// which it swallows — the only way to genuinely stall a hosted session
/// (delivery-time faults still complete every round).
struct SwallowingLoopback final : service::FrameSink {
  RendezvousService* service = nullptr;
  std::uint32_t drop_round = 0;
  std::uint32_t drop_position = 1;
  void on_frame(const service::Frame& frame) override {
    if (frame.round == drop_round && frame.position == drop_position) return;
    service->handle_frame(frame);
  }
};

// A session starved of one frame crosses the deadline: the expiry
// records, warn log and synthetic-timeout metrics must be as silent about
// key material as the happy path.
TEST(RedactionConformance, ExpiryPathLeaksNothing) {
  AuditGuard guard;

  ManualClock clock;
  TraceOptions to;
  to.clock = &clock;
  TraceRecorder trace(to);
  CaptureSink sink;
  Logger::Options lo;
  lo.level = LogLevel::kDebug;
  lo.sink = &sink;
  lo.clock = &clock;
  Logger logger(lo);

  SwallowingLoopback wire;
  ServiceOptions so;
  so.clock = &clock;
  so.egress = &wire;
  so.session_deadline = std::chrono::milliseconds(1000);
  so.trace = &trace;
  so.logger = &logger;
  RendezvousService svc(so);
  wire.service = &svc;

  auto parts = make_parts(4, false, "redact-expire");
  wire.drop_round = static_cast<std::uint32_t>(parts[0]->total_rounds() - 1);
  const std::uint64_t sid = svc.open_session(std::move(parts));
  svc.pump();
  ASSERT_NE(svc.state(sid), SessionState::kDone);
  clock.advance(std::chrono::milliseconds(1500));
  ASSERT_EQ(svc.expire_stalled(), 1u);
  ASSERT_EQ(svc.state(sid), SessionState::kExpired);

  (void)svc.metrics_prometheus();
  audit_output(svc.metrics_json(), "metrics_json");
  const auto records = trace.snapshot();
  (void)trace.to_chrome_json();
  EXPECT_TRUE(has_record(records, TraceEvent::kSessionExpired));
  EXPECT_EQ(RedactionAudit::instance().violations(), 0u)
      << violation_summary();
}

// The negative control: the sweep's zero-violation verdict only counts
// because a deliberate leak of genuinely registered key material IS
// caught, on the same surfaces, by the same scanner.
TEST(RedactionConformance, DeliberateLeakOfSessionKeyIsCaught) {
  AuditGuard guard;
  RedactionAudit& audit = RedactionAudit::instance();

  ManualClock clock;
  ServiceOptions so;
  so.clock = &clock;
  RendezvousService svc(so);
  const std::uint64_t sid = svc.open_session(make_parts(2, false, "leak"));
  svc.pump();
  ASSERT_EQ(svc.state(sid), SessionState::kDone);
  const auto outcomes = svc.outcomes(sid);
  ASSERT_TRUE(outcomes[0].full_success);
  const Bytes& session_key = outcomes[0].session_key;
  ASSERT_GE(session_key.size(), RedactionAudit::kMinSecretBytes);
  ASSERT_EQ(audit.violations(), 0u);

  CaptureSink sink;
  Logger::Options lo;
  lo.sink = &sink;
  Logger logger(lo);
  logger.info("svc", "leaking on purpose")
      .str("key_hex", to_hex(session_key));
  ASSERT_GE(audit.violations(), 1u)
      << "the audit missed a hexed session key — the sweep above proves "
         "nothing";
  EXPECT_EQ(audit.violation_log()[0].surface, "log");

  // Raw bytes through str() get \xNN-escaped (so they do not even land
  // verbatim), but a surface that does carry them raw is flagged too.
  const std::string raw(session_key.begin(), session_key.end());
  audit.check("surface carrying " + raw, "trace");
  EXPECT_GE(audit.violations(), 2u);
}

}  // namespace
}  // namespace shs::obs
