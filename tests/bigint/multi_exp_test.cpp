// Randomized cross-checks for the exponentiation engine: Straus
// multi-exponentiation against the naive per-base product, fixed-base
// tables against Montgomery::exp, the PrecompCache sharing discipline,
// and the process-wide modexp counter's cross-thread aggregation.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "bigint/fixed_base.h"
#include "bigint/modmath.h"
#include "bigint/montgomery.h"
#include "bigint/prime.h"
#include "bigint/random.h"
#include "common/errors.h"

namespace shs::num {
namespace {

BigInt random_odd_modulus(std::size_t bits, RandomSource& rng) {
  BigInt m = random_bits(bits, rng);
  if (m.is_even()) m += BigInt(1);
  if (m <= BigInt(1)) m = BigInt(3);
  return m;
}

/// Reference: prod bases[i]^exps[i] mod m via independent mod_exp calls.
BigInt naive_product(const std::vector<BigInt>& bases,
                     const std::vector<BigInt>& exps, const BigInt& m) {
  BigInt acc = BigInt(1) % m;
  for (std::size_t i = 0; i < bases.size(); ++i) {
    acc = mul_mod(acc, mod_exp(bases[i], exps[i], m), m);
  }
  return acc;
}

TEST(MultiExp, MatchesNaiveProductAcrossModulusSizes) {
  TestRng rng(0x5eed1);
  for (std::size_t bits : {64u, 128u, 384u, 1024u, 2048u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const Montgomery mont(m);
    for (std::size_t k : {1u, 2u, 3u, 5u}) {
      std::vector<BigInt> bases, exps;
      for (std::size_t i = 0; i < k; ++i) {
        bases.push_back(random_below(m, rng));
        // Exponents up to 2x the modulus size (sigma responses exceed |m|).
        exps.push_back(random_bits(1 + rng.below_u64(2 * bits), rng));
      }
      EXPECT_EQ(mont.multi_exp(bases, exps), naive_product(bases, exps, m))
          << bits << "-bit modulus, k=" << k;
    }
  }
}

TEST(MultiExp, EdgeCases) {
  TestRng rng(0x5eed2);
  const BigInt m = random_odd_modulus(256, rng);
  const Montgomery mont(m);
  const BigInt b = random_below(m, rng);

  // Empty product and all-zero exponents are 1.
  EXPECT_EQ(mont.multi_exp({}, {}), BigInt(1));
  EXPECT_EQ(mont.multi_exp(std::vector<BigInt>{b, b},
                           std::vector<BigInt>{BigInt(0), BigInt(0)}),
            BigInt(1));

  // Base 0 and base 1.
  EXPECT_EQ(mont.multi_exp(std::vector<BigInt>{BigInt(0)},
                           std::vector<BigInt>{BigInt(17)}),
            BigInt(0));
  EXPECT_EQ(mont.multi_exp(std::vector<BigInt>{BigInt(1), b},
                           std::vector<BigInt>{BigInt(1000), BigInt(3)}),
            mod_exp(b, BigInt(3), m));

  // Zero exponent mixed into a product contributes 1.
  EXPECT_EQ(mont.multi_exp(std::vector<BigInt>{b, BigInt(0)},
                           std::vector<BigInt>{BigInt(5), BigInt(0)}),
            mod_exp(b, BigInt(5), m));

  // k=1 agrees with single exponentiation.
  const BigInt e = random_bits(300, rng);
  EXPECT_EQ(mont.multi_exp(std::vector<BigInt>{b}, std::vector<BigInt>{e}),
            mont.exp(b, e));

  // Single-limb and tiny moduli.
  for (const BigInt& small :
       {BigInt(3), BigInt::from_hex("ffffffffffffffc5")}) {
    const Montgomery ms(small);
    const BigInt base = random_below(small, rng);
    const BigInt exp = random_bits(90, rng);
    EXPECT_EQ(ms.multi_exp(std::vector<BigInt>{base, BigInt(2) % small},
                           std::vector<BigInt>{exp, BigInt(7)}),
              naive_product({base, BigInt(2) % small}, {exp, BigInt(7)},
                            small));
  }

  // Mismatched span lengths and out-of-range bases are rejected.
  EXPECT_THROW((void)mont.multi_exp(std::vector<BigInt>{b},
                                    std::vector<BigInt>{}),
               Error);
  EXPECT_THROW((void)mont.multi_exp(std::vector<BigInt>{m},
                                    std::vector<BigInt>{BigInt(1)}),
               Error);
}

TEST(FixedBase, MatchesMontgomeryExp) {
  TestRng rng(0x5eed3);
  for (std::size_t bits : {64u, 512u, 1024u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    auto mont = std::make_shared<const Montgomery>(m);
    const BigInt base = random_below(m, rng);
    const FixedBaseTable table(mont, base, 2 * bits);

    EXPECT_EQ(table.exp(BigInt(0)), BigInt(1) % m);
    EXPECT_EQ(table.exp(BigInt(1)), base);
    for (int i = 0; i < 8; ++i) {
      const BigInt e = random_bits(1 + rng.below_u64(2 * bits), rng);
      ASSERT_TRUE(table.covers(e));
      EXPECT_EQ(table.exp(e), mont->exp(base, e)) << bits << "-bit, trial "
                                                  << i;
    }
    // covers() boundary: max_exp_bits is a hard limit.
    EXPECT_TRUE(table.covers(random_bits(table.max_exp_bits(), rng)));
    EXPECT_FALSE(table.covers(BigInt(1) << table.max_exp_bits()));
  }
}

TEST(FixedBase, PrecompCacheSharesTables) {
  TestRng rng(0x5eed4);
  const BigInt m = random_odd_modulus(256, rng);
  auto mont = std::make_shared<const Montgomery>(m);
  const BigInt base = random_below(m, rng);

  auto& cache = PrecompCache::instance();
  auto t1 = cache.ensure(mont, base, 128);
  auto t2 = cache.ensure(mont, base, 100);
  EXPECT_EQ(t1.get(), t2.get());  // second request served from cache

  // A larger request rebuilds; the old table stays valid for holders.
  auto t3 = cache.ensure(mont, base, 512);
  EXPECT_GE(t3->max_exp_bits(), 512u);
  const BigInt e = random_bits(100, rng);
  EXPECT_EQ(t1->exp(e), t3->exp(e));
}

TEST(FixedBase, MultiExpCachedHandlesNegativeExponents) {
  TestRng rng(0x5eed5);
  // Odd prime modulus so every nonzero base is invertible.
  const BigInt m = random_prime(192, rng);
  const Montgomery mont(m);
  std::vector<BigInt> bases{random_range(BigInt(2), m - BigInt(2), rng),
                            random_range(BigInt(2), m - BigInt(2), rng)};
  std::vector<BigInt> exps{random_bits(150, rng), -random_bits(150, rng)};

  const BigInt expected =
      mul_mod(mod_exp(bases[0], exps[0], m),
              mod_exp(mod_inverse(bases[1], m), -exps[1], m), m);
  EXPECT_EQ(multi_exp_cached(mont, bases, exps, {}), expected);
}

TEST(ModexpCounter, AggregatesAcrossThreads) {
  TestRng rng(0x5eed6);
  const BigInt m = random_odd_modulus(128, rng);
  const Montgomery mont(m);
  const BigInt b = random_below(m, rng);

  reset_modexp_count();
  constexpr int kThreads = 4;
  constexpr int kExpsPerThread = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kExpsPerThread; ++i) {
        (void)mont.exp(b, BigInt(65537));
      }
    });
  }
  for (auto& w : workers) w.join();
  // Exps on worker threads (including already-exited ones) are all visible.
  EXPECT_EQ(modexp_count(), kThreads * kExpsPerThread);

  // multi_exp counts one per constituent base.
  reset_modexp_count();
  (void)mont.multi_exp(std::vector<BigInt>{b, b, b},
                       std::vector<BigInt>{BigInt(3), BigInt(5), BigInt(7)});
  EXPECT_EQ(modexp_count(), 3u);
}

}  // namespace
}  // namespace shs::num
