// Process-wide precomputation cache under concurrency: many threads
// acquiring the same (modulus, base) table must all end up sharing one
// table (hit/miss counters account for every call), and concurrent
// table-served exponentiation must agree with the generic path. Run under
// TSan by tools/check.sh --batch. Worker threads report through atomics;
// all gtest assertions happen after the join.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bigint/fixed_base.h"
#include "bigint/modmath.h"
#include "bigint/montgomery.h"
#include "bigint/random.h"

namespace shs::num {
namespace {

TEST(PrecompConcurrency, ConcurrentAcquireSharesOneTable) {
  PrecompCache& cache = PrecompCache::instance();
  cache.clear();
  cache.reset_counters();

  // A fixed odd modulus and base: every thread asks for the same key.
  const BigInt m = (BigInt(1) << 255) + BigInt(977);  // odd, 256 bits
  auto mont = std::make_shared<const Montgomery>(m);
  const BigInt base(12345);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAcquires = 32;

  std::vector<std::shared_ptr<const FixedBaseTable>> first(kThreads);
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TestRng rng(0xace0 + t);
      for (std::size_t i = 0; i < kAcquires; ++i) {
        auto table = cache.ensure(mont, base, 256);
        if (first[t] == nullptr) first[t] = table;
        // Exercise the shared table concurrently against the generic path.
        const BigInt e = random_bits(64, rng);
        if (table->exp(e) != mod_exp(base, e, m)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(first[t], first[0]) << "thread " << t << " got its own table";
  }
  EXPECT_EQ(cache.size(), 1u);
  // Every call is accounted: exactly the builders missed, the rest hit.
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kAcquires);
  EXPECT_GE(cache.misses(), 1u);
  EXPECT_GE(cache.hits(), kThreads * kAcquires - kThreads);
  cache.clear();
  cache.reset_counters();
}

TEST(PrecompConcurrency, GrowingATableKeepsServingReaders) {
  PrecompCache& cache = PrecompCache::instance();
  cache.clear();
  cache.reset_counters();

  const BigInt m = (BigInt(1) << 127) + BigInt(45);
  auto mont = std::make_shared<const Montgomery>(m);
  const BigInt base(7);

  // Writers repeatedly re-ensure with growing exponent widths while
  // readers exercise whatever table they acquired; shared_ptr ownership
  // must keep superseded tables valid for in-flight readers.
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> undersized{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      TestRng rng(0xbead + t);
      for (std::size_t i = 0; i < 16; ++i) {
        const std::size_t bits = 32 + 16 * ((t + i) % 7);
        auto table = cache.ensure(mont, base, bits);
        if (table->max_exp_bits() < bits) {
          undersized.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const BigInt e = random_bits(31, rng);
        if (table->exp(e) != mod_exp(base, e, m)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(undersized.load(), 0u);
  EXPECT_EQ(cache.size(), 1u) << "one key: growth must replace in place";
  cache.clear();
  cache.reset_counters();
}

}  // namespace
}  // namespace shs::num
