// Tests for modular arithmetic, Montgomery exponentiation, gcd/inverse,
// Jacobi symbols and CRT.
#include <gtest/gtest.h>

#include "bigint/modmath.h"
#include "bigint/montgomery.h"
#include "bigint/random.h"
#include "common/errors.h"

namespace shs::num {
namespace {

TEST(ModMath, CanonicalResidue) {
  EXPECT_EQ(mod(BigInt(7), BigInt(3)), BigInt(1));
  EXPECT_EQ(mod(BigInt(-7), BigInt(3)), BigInt(2));
  EXPECT_EQ(mod(BigInt(-3), BigInt(3)), BigInt(0));
  EXPECT_THROW(mod(BigInt(1), BigInt(0)), MathError);
  EXPECT_THROW(mod(BigInt(1), BigInt(-5)), MathError);
}

TEST(ModMath, GcdKnownValues) {
  EXPECT_EQ(gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(gcd(BigInt::from_dec("123456789123456789"),
                BigInt::from_dec("987654321987654321")),
            BigInt::from_dec("9000000009"));
}

TEST(ModMath, ExtGcdBezoutIdentity) {
  TestRng rng(11);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = random_bits(200, rng);
    const BigInt b = random_bits(180, rng);
    BigInt x, y;
    const BigInt g = ext_gcd(a, b, x, y);
    EXPECT_EQ(a * x + b * y, g);
    EXPECT_EQ(g, gcd(a, b));
    EXPECT_TRUE((a % g).is_zero());
    EXPECT_TRUE((b % g).is_zero());
  }
}

TEST(ModMath, ModInverse) {
  TestRng rng(12);
  const BigInt m = BigInt::from_dec("1000000007");  // prime
  for (int i = 0; i < 50; ++i) {
    const BigInt a = random_range(BigInt(1), m - BigInt(1), rng);
    const BigInt inv = mod_inverse(a, m);
    EXPECT_EQ(mul_mod(a, inv, m), BigInt(1));
  }
  EXPECT_THROW(mod_inverse(BigInt(4), BigInt(8)), MathError);
  EXPECT_THROW(mod_inverse(BigInt(0), BigInt(7)), MathError);
}

TEST(ModMath, ModExpKnownValues) {
  EXPECT_EQ(mod_exp(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(mod_exp(BigInt(3), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(mod_exp(BigInt(0), BigInt(5), BigInt(7)), BigInt(0));
  // Fermat: a^(p-1) = 1 mod p.
  const BigInt p = BigInt::from_dec("1000000007");
  EXPECT_EQ(mod_exp(BigInt(12345), p - BigInt(1), p), BigInt(1));
  // Negative exponent = inverse.
  EXPECT_EQ(mod_exp(BigInt(3), BigInt(-1), BigInt(7)), BigInt(5));
}

TEST(ModMath, ModExpEvenModulus) {
  // Montgomery cannot handle even moduli; the generic path must.
  EXPECT_EQ(mod_exp(BigInt(3), BigInt(4), BigInt(100)), BigInt(81) % BigInt(100));
  EXPECT_EQ(mod_exp(BigInt(7), BigInt(13), BigInt(2048)),
            BigInt::from_dec("96889010407") % BigInt(2048));
}

class MontgomeryProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MontgomeryProperty, MulMatchesSchoolbookAtSize) {
  const std::size_t bits = GetParam();
  TestRng rng(bits);
  for (int i = 0; i < 10; ++i) {
    BigInt m = random_bits(bits, rng);
    if (m.is_even()) m += BigInt(1);
    if (m == BigInt(1)) continue;
    const Montgomery mont(m);
    const BigInt a = random_below(m, rng);
    const BigInt b = random_below(m, rng);
    EXPECT_EQ(mont.mul(a, b), (a * b) % m);
  }
}

TEST_P(MontgomeryProperty, ExpMatchesNaiveSquareAndMultiply) {
  const std::size_t bits = GetParam();
  TestRng rng(bits + 1);
  BigInt m = random_bits(bits, rng);
  if (m.is_even()) m += BigInt(1);
  const Montgomery mont(m);
  const BigInt base = random_below(m, rng);
  const BigInt e = random_bits(bits / 2 + 3, rng);
  // Naive reference.
  BigInt expect(1);
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    expect = (expect * expect) % m;
    if (e.bit(i)) expect = (expect * base) % m;
  }
  EXPECT_EQ(mont.exp(base, e), expect);
}

INSTANTIATE_TEST_SUITE_P(BitSizes, MontgomeryProperty,
                         ::testing::Values(32, 64, 96, 128, 256, 512, 1024,
                                           2048));

TEST(Montgomery, ExponentLawsHold) {
  TestRng rng(77);
  BigInt modulus = random_bits(512, rng);
  if (modulus.is_even()) modulus += BigInt(1);
  const Montgomery mont(modulus);
  const BigInt g = random_below(modulus, rng);
  const BigInt a = random_bits(128, rng);
  const BigInt b = random_bits(128, rng);
  // g^(a+b) == g^a * g^b
  EXPECT_EQ(mont.exp(g, a + b), mont.mul(mont.exp(g, a), mont.exp(g, b)));
  // (g^a)^b == g^(ab)
  EXPECT_EQ(mont.exp(mont.exp(g, a), b), mont.exp(g, a * b));
}

TEST(Montgomery, RejectsBadInputs) {
  EXPECT_THROW(Montgomery(BigInt(8)), MathError);   // even
  EXPECT_THROW(Montgomery(BigInt(1)), MathError);   // unit
  EXPECT_THROW(Montgomery(BigInt(-7)), MathError);  // negative
  const Montgomery mont(BigInt(7));
  EXPECT_THROW(mont.mul(BigInt(9), BigInt(1)), MathError);
  EXPECT_THROW(mont.exp(BigInt(9), BigInt(1)), MathError);
}

TEST(ModMath, JacobiKnownValues) {
  // Table values for (a/p) with small primes.
  EXPECT_EQ(jacobi(BigInt(1), BigInt(7)), 1);
  EXPECT_EQ(jacobi(BigInt(2), BigInt(7)), 1);
  EXPECT_EQ(jacobi(BigInt(3), BigInt(7)), -1);
  EXPECT_EQ(jacobi(BigInt(0), BigInt(7)), 0);
  EXPECT_EQ(jacobi(BigInt(14), BigInt(7)), 0);
  // (a/n) multiplicativity for composite n = 15.
  EXPECT_EQ(jacobi(BigInt(2), BigInt(15)),
            jacobi(BigInt(2), BigInt(3)) * jacobi(BigInt(2), BigInt(5)));
  EXPECT_THROW((void)jacobi(BigInt(2), BigInt(8)), MathError);
}

TEST(ModMath, JacobiMatchesEulerCriterionOnPrime) {
  TestRng rng(13);
  const BigInt p = BigInt::from_dec("1000000007");
  const BigInt exponent = (p - BigInt(1)) >> 1;
  for (int i = 0; i < 50; ++i) {
    const BigInt a = random_range(BigInt(1), p - BigInt(1), rng);
    const BigInt euler = mod_exp(a, exponent, p);
    const int j = jacobi(a, p);
    if (j == 1) {
      EXPECT_EQ(euler, BigInt(1));
    } else {
      EXPECT_EQ(euler, p - BigInt(1));
    }
  }
}

TEST(ModMath, CrtReconstruction) {
  TestRng rng(14);
  const BigInt m1 = BigInt::from_dec("1000000007");
  const BigInt m2 = BigInt::from_dec("998244353");
  for (int i = 0; i < 20; ++i) {
    const BigInt x = random_below(m1 * m2, rng);
    const BigInt r = crt(x % m1, m1, x % m2, m2);
    EXPECT_EQ(r, x);
  }
}

}  // namespace
}  // namespace shs::num
