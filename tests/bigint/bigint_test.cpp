// BigInt core arithmetic tests: reference-checked small-number behaviour,
// algebraic property sweeps at many bit sizes, serialization roundtrips,
// and regression coverage for the Knuth-division corner cases.
#include <gtest/gtest.h>

#include <cstdint>

#include "bigint/bigint.h"
#include "bigint/random.h"
#include "common/errors.h"

namespace shs::num {
namespace {

TEST(BigIntBasics, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
}

TEST(BigIntBasics, SmallConstruction) {
  EXPECT_EQ(BigInt(42).to_dec(), "42");
  EXPECT_EQ(BigInt(-42).to_dec(), "-42");
  EXPECT_EQ(BigInt(std::uint64_t{0xffffffffffffffffULL}).to_hex(),
            "ffffffffffffffff");
  EXPECT_EQ(BigInt(INT64_MIN).to_dec(), "-9223372036854775808");
}

TEST(BigIntBasics, ComparisonOrdering) {
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(-3), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_EQ(BigInt(7), BigInt(7));
  EXPECT_LT(BigInt::from_hex("ffffffffffffffff"),
            BigInt::from_hex("10000000000000000"));
}

TEST(BigIntBasics, HexRoundtrip) {
  const char* cases[] = {"0", "1", "f", "deadbeef", "ffffffffffffffff",
                         "10000000000000000",
                         "123456789abcdef0123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::from_hex(c).to_hex(), c) << c;
  }
  EXPECT_EQ(BigInt::from_hex("-ff").to_dec(), "-255");
  EXPECT_EQ(BigInt::from_hex("00ff").to_hex(), "ff");
}

TEST(BigIntBasics, DecRoundtrip) {
  const char* cases[] = {
      "0", "1", "9", "10", "18446744073709551615", "18446744073709551616",
      "340282366920938463463374607431768211455",
      "99999999999999999999999999999999999999999999999999"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::from_dec(c).to_dec(), c) << c;
  }
  EXPECT_EQ(BigInt::from_dec("-12345678901234567890123").to_dec(),
            "-12345678901234567890123");
}

TEST(BigIntBasics, RejectsMalformedInput) {
  EXPECT_THROW(BigInt::from_hex(""), CodecError);
  EXPECT_THROW(BigInt::from_hex("xyz"), CodecError);
  EXPECT_THROW(BigInt::from_dec(""), CodecError);
  EXPECT_THROW(BigInt::from_dec("12a"), CodecError);
  EXPECT_THROW(BigInt::from_dec("-"), CodecError);
}

TEST(BigIntBasics, BytesRoundtrip) {
  TestRng rng(1);
  for (std::size_t bits : {1u, 7u, 8u, 63u, 64u, 65u, 255u, 1024u}) {
    const BigInt v = random_bits(bits, rng);
    EXPECT_EQ(BigInt::from_bytes(v.to_bytes()), v) << bits;
  }
  EXPECT_TRUE(BigInt::from_bytes({}).is_zero());
  EXPECT_TRUE(BigInt().to_bytes().empty());
}

TEST(BigIntBasics, PaddedBytes) {
  const BigInt v = BigInt::from_hex("abcd");
  Bytes padded = v.to_bytes_padded(4);
  ASSERT_EQ(padded.size(), 4u);
  EXPECT_EQ(to_hex(padded), "0000abcd");
  EXPECT_THROW(v.to_bytes_padded(1), MathError);
  EXPECT_THROW(BigInt(-1).to_bytes_padded(4), MathError);
}

TEST(BigIntBasics, BitAccess) {
  const BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_EQ((BigInt(1) << 200).bit_length(), 201u);
}

TEST(BigIntBasics, ToU64) {
  EXPECT_EQ(BigInt(0).to_u64(), 0u);
  EXPECT_EQ(BigInt::from_hex("ffffffffffffffff").to_u64(), UINT64_MAX);
  EXPECT_THROW((void)BigInt(-1).to_u64(), MathError);
  EXPECT_THROW((void)BigInt::from_hex("10000000000000000").to_u64(), MathError);
}

// --- Property sweeps against 128-bit reference arithmetic -------------------

using i128 = __int128;

BigInt from_i128(i128 v) {
  const bool neg = v < 0;
  unsigned __int128 mag = neg ? static_cast<unsigned __int128>(-(v + 1)) + 1
                              : static_cast<unsigned __int128>(v);
  BigInt out = (BigInt(static_cast<std::uint64_t>(mag >> 64)) << 64) +
               BigInt(static_cast<std::uint64_t>(mag));
  return neg ? -out : out;
}

class BigIntRefProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntRefProperty, ArithmeticMatchesInt128) {
  TestRng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const auto a64 = static_cast<std::int64_t>(rng.next_u64());
    const auto b64 = static_cast<std::int64_t>(rng.next_u64());
    const i128 a = a64, b = b64;
    EXPECT_EQ(from_i128(a + b), from_i128(a) + from_i128(b));
    EXPECT_EQ(from_i128(a - b), from_i128(a) - from_i128(b));
    EXPECT_EQ(from_i128(a * b), from_i128(a) * from_i128(b));
    if (b != 0) {
      EXPECT_EQ(from_i128(a / b), from_i128(a) / from_i128(b));
      EXPECT_EQ(from_i128(a % b), from_i128(a) % from_i128(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRefProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

class BigIntAlgebraProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigIntAlgebraProperty, RingAxiomsAtManySizes) {
  const std::size_t bits = GetParam();
  TestRng rng(bits * 977 + 13);
  for (int iter = 0; iter < 25; ++iter) {
    const BigInt a = random_bits(bits, rng);
    const BigInt b = random_bits(bits / 2 + 1, rng);
    const BigInt c = random_bits(bits / 3 + 1, rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + (-a), BigInt(0));
    EXPECT_EQ(a * BigInt(1), a);
    EXPECT_EQ(a * BigInt(0), BigInt(0));
  }
}

TEST_P(BigIntAlgebraProperty, DivModInvariant) {
  const std::size_t bits = GetParam();
  TestRng rng(bits * 31337 + 7);
  for (int iter = 0; iter < 25; ++iter) {
    const BigInt a = random_bits(2 * bits, rng);
    const BigInt b = random_bits(bits, rng);
    BigInt q, r;
    BigInt::div_mod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_GE(r, BigInt(0));
    EXPECT_LT(r, b);
    // Signed variants: remainder carries the dividend's sign.
    BigInt::div_mod(-a, b, q, r);
    EXPECT_EQ(q * b + r, -a);
    EXPECT_LE(r, BigInt(0));
  }
}

TEST_P(BigIntAlgebraProperty, ShiftsMatchMultiplication) {
  const std::size_t bits = GetParam();
  TestRng rng(bits + 42);
  const BigInt a = random_bits(bits, rng);
  for (std::size_t s : {1u, 13u, 64u, 65u, 130u}) {
    BigInt pow2 = BigInt(1) << s;
    EXPECT_EQ(a << s, a * pow2);
    EXPECT_EQ((a << s) >> s, a);
    EXPECT_EQ(a >> s, a / pow2);
  }
}

INSTANTIATE_TEST_SUITE_P(BitSizes, BigIntAlgebraProperty,
                         ::testing::Values(8, 64, 65, 128, 192, 256, 521,
                                           1024, 2048, 4096));

TEST(BigIntDivision, KnuthAddBackCase) {
  // A dividend/divisor pair engineered to trigger the rare "add back" step:
  // top limbs maximal so the initial qhat estimate overshoots.
  const BigInt u = BigInt::from_hex(
      "7fffffffffffffff800000000000000000000000000000000000000000000000");
  const BigInt v =
      BigInt::from_hex("800000000000000080000000000000000000000000000001");
  BigInt q, r;
  BigInt::div_mod(u, v, q, r);
  EXPECT_EQ(q * v + r, u);
  EXPECT_GE(r, BigInt(0));
  EXPECT_LT(r, v);
}

TEST(BigIntDivision, DividendEqualsDivisor) {
  const BigInt v = BigInt::from_hex("deadbeefdeadbeefdeadbeefdeadbeef");
  EXPECT_EQ(v / v, BigInt(1));
  EXPECT_EQ(v % v, BigInt(0));
}

TEST(BigIntDivision, ByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), MathError);
  EXPECT_THROW(BigInt(1) % BigInt(0), MathError);
}

TEST(BigIntDivision, SingleLimbDivisor) {
  TestRng rng(99);
  const BigInt a = random_bits(512, rng);
  const BigInt d(std::uint64_t{0x1234567890abcdefULL});
  BigInt q, r;
  BigInt::div_mod(a, d, q, r);
  EXPECT_EQ(q * d + r, a);
  EXPECT_LT(r, d);
}

TEST(BigIntMultiplication, KaratsubaAgreesWithSchoolbook) {
  // Karatsuba kicks in at 32 limbs (2048 bits); compare products across the
  // threshold against the distributive law on split halves.
  TestRng rng(7);
  for (std::size_t bits : {2048u, 3000u, 4096u, 8192u}) {
    const BigInt a = random_bits(bits, rng);
    const BigInt b = random_bits(bits, rng);
    const BigInt half_mask = (BigInt(1) << (bits / 2)) - BigInt(1);
    const BigInt a0 = a % (half_mask + BigInt(1));
    const BigInt a1 = a >> (bits / 2);
    // (a1*2^h + a0) * b computed two ways.
    EXPECT_EQ(a * b, ((a1 * b) << (bits / 2)) + a0 * b) << bits;
  }
}

TEST(BigIntMultiplication, UnbalancedOperands) {
  TestRng rng(8);
  const BigInt big = random_bits(4096, rng);
  const BigInt small = random_bits(65, rng);
  BigInt q, r;
  BigInt::div_mod(big * small, small, q, r);
  EXPECT_EQ(q, big);
  EXPECT_TRUE(r.is_zero());
}

}  // namespace
}  // namespace shs::num
