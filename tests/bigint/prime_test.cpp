// Primality and prime-generation tests: known primes/composites including
// Carmichael numbers and strong pseudoprimes, generation invariants, and
// the safe-prime structure used by the embedded group parameters.
#include <gtest/gtest.h>

#include "bigint/modmath.h"
#include "bigint/prime.h"
#include "bigint/random.h"
#include "common/errors.h"

namespace shs::num {
namespace {

TEST(Prime, SmallKnownValues) {
  TestRng rng(1);
  const std::uint64_t primes[] = {2, 3, 5, 7, 97, 997, 7919, 104729};
  for (std::uint64_t p : primes) {
    EXPECT_TRUE(is_probable_prime(BigInt(p), rng)) << p;
  }
  const std::uint64_t composites[] = {0, 1, 4, 9, 100, 997 * 997, 104729ULL * 7919};
  for (std::uint64_t c : composites) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  TestRng rng(2);
  // Fermat pseudoprimes to every base; Miller-Rabin must still reject them.
  const std::uint64_t carmichael[] = {561, 1105, 1729, 2465, 2821, 6601,
                                      8911, 10585, 15841, 29341};
  for (std::uint64_t c : carmichael) {
    EXPECT_FALSE(is_probable_prime(BigInt(c), rng)) << c;
  }
}

TEST(Prime, LargeKnownPrime) {
  TestRng rng(3);
  // 2^127 - 1 (Mersenne prime) and 2^89 - 1 (Mersenne prime).
  EXPECT_TRUE(is_probable_prime((BigInt(1) << 127) - BigInt(1), rng));
  EXPECT_TRUE(is_probable_prime((BigInt(1) << 89) - BigInt(1), rng));
  // 2^128 - 1 factors (composite); 2^83 - 1 composite Mersenne.
  EXPECT_FALSE(is_probable_prime((BigInt(1) << 128) - BigInt(1), rng));
  EXPECT_FALSE(is_probable_prime((BigInt(1) << 83) - BigInt(1), rng));
}

TEST(Prime, ProductOfTwoLargePrimesIsComposite) {
  TestRng rng(4);
  const BigInt p = random_prime(96, rng);
  const BigInt q = random_prime(96, rng);
  EXPECT_FALSE(is_probable_prime(p * q, rng));
}

class PrimeGeneration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimeGeneration, RandomPrimeHasExactBitLength) {
  TestRng rng(GetParam() * 7 + 5);
  const BigInt p = random_prime(GetParam(), rng);
  EXPECT_EQ(p.bit_length(), GetParam());
  EXPECT_TRUE(is_probable_prime(p, rng));
  EXPECT_TRUE(p.is_odd());
}

INSTANTIATE_TEST_SUITE_P(BitSizes, PrimeGeneration,
                         ::testing::Values(16, 32, 64, 128, 160, 256));

TEST(Prime, RandomPrimeInRange) {
  TestRng rng(6);
  const BigInt lo = BigInt(1) << 100;
  const BigInt hi = (BigInt(1) << 100) + BigInt(100000);
  for (int i = 0; i < 5; ++i) {
    const BigInt p = random_prime_in_range(lo, hi, rng);
    EXPECT_GE(p, lo);
    EXPECT_LE(p, hi);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
  EXPECT_THROW(random_prime_in_range(BigInt(10), BigInt(5), rng), MathError);
}

TEST(Prime, SafePrimeStructure) {
  TestRng rng(7);
  const BigInt p = random_safe_prime(96, rng);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(is_probable_prime(p, rng));
  const BigInt q = (p - BigInt(1)) >> 1;
  EXPECT_TRUE(is_probable_prime(q, rng));
}

TEST(Prime, EdgeArguments) {
  TestRng rng(8);
  EXPECT_THROW(random_prime(1, rng), MathError);
  EXPECT_THROW(random_safe_prime(2, rng), MathError);
  EXPECT_FALSE(is_probable_prime(BigInt(-7), rng));
}

}  // namespace
}  // namespace shs::num
