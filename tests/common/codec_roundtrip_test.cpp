// Codec round-trip property tests: random operation sequences survive
// encode -> decode exactly; every strict prefix of an encoding, and any
// encoding with trailing junk, fails cleanly with CodecError — the
// guarantee the handshake relies on to treat malformed messages as
// attacks (process_phase3 maps decode failures to silent exclusion).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <variant>
#include <vector>

#include "common/codec.h"
#include "common/errors.h"

namespace shs {
namespace {

using Op = std::variant<std::uint8_t, std::uint32_t, std::uint64_t, Bytes,
                        std::string>;

std::vector<Op> random_ops(std::mt19937_64& rng) {
  const std::size_t n = 1 + rng() % 12;
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 5) {
      case 0: ops.emplace_back(static_cast<std::uint8_t>(rng())); break;
      case 1: ops.emplace_back(static_cast<std::uint32_t>(rng())); break;
      case 2: ops.emplace_back(static_cast<std::uint64_t>(rng())); break;
      case 3: {
        Bytes b(rng() % 40, 0);
        for (auto& v : b) v = static_cast<std::uint8_t>(rng());
        ops.emplace_back(std::move(b));
        break;
      }
      default: {
        std::string s(rng() % 40, '\0');
        for (auto& c : s) c = static_cast<char>('a' + rng() % 26);
        ops.emplace_back(std::move(s));
        break;
      }
    }
  }
  return ops;
}

Bytes encode(const std::vector<Op>& ops) {
  ByteWriter w;
  for (const Op& op : ops) {
    std::visit(
        [&w](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, std::uint8_t>) w.u8(v);
          else if constexpr (std::is_same_v<T, std::uint32_t>) w.u32(v);
          else if constexpr (std::is_same_v<T, std::uint64_t>) w.u64(v);
          else if constexpr (std::is_same_v<T, Bytes>) w.bytes(v);
          else w.str(v);
        },
        op);
  }
  return w.take();
}

void decode_and_compare(BytesView data, const std::vector<Op>& ops) {
  ByteReader r(data);
  for (const Op& op : ops) {
    std::visit(
        [&r](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, std::uint8_t>) EXPECT_EQ(r.u8(), v);
          else if constexpr (std::is_same_v<T, std::uint32_t>)
            EXPECT_EQ(r.u32(), v);
          else if constexpr (std::is_same_v<T, std::uint64_t>)
            EXPECT_EQ(r.u64(), v);
          else if constexpr (std::is_same_v<T, Bytes>) EXPECT_EQ(r.bytes(), v);
          else EXPECT_EQ(r.str(), v);
        },
        op);
  }
  EXPECT_TRUE(r.done());
  r.expect_done();
}

/// Reads the ops back, swallowing the expected CodecError; returns true
/// if decoding (including expect_done) succeeded in full.
bool decodes_cleanly(BytesView data, const std::vector<Op>& ops) {
  try {
    ByteReader r(data);
    for (const Op& op : ops) {
      std::visit(
          [&r](const auto& v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::uint8_t>) (void)r.u8();
            else if constexpr (std::is_same_v<T, std::uint32_t>) (void)r.u32();
            else if constexpr (std::is_same_v<T, std::uint64_t>) (void)r.u64();
            else if constexpr (std::is_same_v<T, Bytes>) (void)r.bytes();
            else (void)r.str();
          },
          op);
    }
    r.expect_done();
    return true;
  } catch (const CodecError&) {
    return false;
  }
}

TEST(CodecRoundTrip, RandomOpSequencesSurviveEncodeDecode) {
  std::mt19937_64 rng(0xc0dec'0001ULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<Op> ops = random_ops(rng);
    decode_and_compare(encode(ops), ops);
  }
}

TEST(CodecRoundTrip, EveryStrictPrefixFailsCleanly) {
  std::mt19937_64 rng(0xc0dec'0002ULL);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<Op> ops = random_ops(rng);
    const Bytes full = encode(ops);
    ASSERT_TRUE(decodes_cleanly(full, ops));
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const Bytes prefix(full.begin(), full.begin() + cut);
      EXPECT_FALSE(decodes_cleanly(prefix, ops))
          << "prefix of length " << cut << "/" << full.size()
          << " decoded as if complete";
    }
  }
}

TEST(CodecRoundTrip, TrailingJunkFailsExpectDone) {
  std::mt19937_64 rng(0xc0dec'0003ULL);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<Op> ops = random_ops(rng);
    Bytes padded = encode(ops);
    padded.push_back(static_cast<std::uint8_t>(rng()));
    EXPECT_FALSE(decodes_cleanly(padded, ops));
  }
}

TEST(CodecRoundTrip, HugeLengthPrefixThrowsInsteadOfReadingPastTheEnd) {
  // A length prefix far beyond the actual buffer must throw CodecError,
  // not allocate or read out of bounds.
  ByteWriter w;
  w.u32(0xffffffffu);  // claims ~4 GiB of payload
  w.u8(0x42);
  const Bytes data = w.take();
  ByteReader r(data);
  EXPECT_THROW((void)r.bytes(), CodecError);
}

TEST(CodecRoundTrip, EmptyBytesAndStringsRoundTrip) {
  ByteWriter w;
  w.bytes(Bytes{});
  w.str("");
  const Bytes data = w.take();
  ByteReader r(data);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  r.expect_done();
}

TEST(CodecRoundTrip, ReaderTracksRemainingExactly)  {
  ByteWriter w;
  w.u64(7);
  w.u32(7);
  w.u8(7);
  const Bytes data = w.take();
  ByteReader r(data);
  EXPECT_EQ(r.remaining(), 13u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 5u);
  (void)r.u32();
  (void)r.u8();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace shs
