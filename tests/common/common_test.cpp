// Tests for byte utilities and the serialization codec, including the
// adversarial decoding paths (truncation, trailing bytes) that protocol
// code relies on to reject tampered messages.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/errors.h"

namespace shs {
namespace {

TEST(Bytes, HexRoundtrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
  EXPECT_TRUE(from_hex("").empty());
  EXPECT_EQ(to_hex({}), "");
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), CodecError);
  EXPECT_THROW(from_hex("zz"), CodecError);
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, XorInplace) {
  Bytes a = {0xff, 0x00, 0xaa};
  const Bytes b = {0x0f, 0xf0, 0xaa};
  xor_inplace(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
  Bytes wrong = {1};
  EXPECT_THROW(xor_inplace(wrong, b), MathError);
}

TEST(Codec, RoundtripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes({});

  ByteReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(to_hex(w.buffer()), "01020304");
}

TEST(Codec, TruncationThrows) {
  ByteWriter w;
  w.bytes(Bytes{1, 2, 3, 4, 5});
  Bytes buf = w.take();
  buf.resize(buf.size() - 2);  // adversarial truncation
  ByteReader r(buf);
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, LengthPrefixLyingThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(7);
  ByteReader r(w.buffer());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, TrailingBytesDetected) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expect_done(), CodecError);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Codec, EmptyReader) {
  ByteReader r(BytesView{});
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), CodecError);
}

}  // namespace
}  // namespace shs
