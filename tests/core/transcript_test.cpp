// Transcript wire-format tests: roundtrip, GA tracing from a deserialized
// copy (the investigator flow), and malformed-input rejection.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;
using testing::handshake;

TEST(Transcript, SerializeDeserializeRoundtrip) {
  TestGroup group("ser", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2)};
  HandshakeOptions opts;
  opts.self_distinction = true;
  auto outcomes = handshake({members[0], members[1]}, opts, "ser");
  ASSERT_TRUE(outcomes[0].full_success);

  const HandshakeTranscript& original = outcomes[0].transcript;
  const HandshakeTranscript copy =
      HandshakeTranscript::deserialize(original.serialize());
  EXPECT_EQ(copy.session_tag, original.session_tag);
  EXPECT_EQ(copy.options.self_distinction, original.options.self_distinction);
  EXPECT_EQ(copy.options.traceable, original.options.traceable);
  ASSERT_EQ(copy.entries.size(), original.entries.size());
  for (std::size_t i = 0; i < copy.entries.size(); ++i) {
    EXPECT_EQ(copy.entries[i].theta, original.entries[i].theta);
    EXPECT_EQ(copy.entries[i].delta, original.entries[i].delta);
  }
}

TEST(Transcript, GaTracesFromDeserializedCopy) {
  TestGroup group("ser-trace", GroupConfig{});
  const Member* members[] = {&group.admit(7), &group.admit(8),
                             &group.admit(9)};
  auto outcomes = handshake({members[0], members[1], members[2]},
                            HandshakeOptions{}, "ser-trace");
  ASSERT_TRUE(outcomes[0].full_success);
  // The investigator ships the serialized transcript to the GA.
  const Bytes wire = outcomes[0].transcript.serialize();
  auto traced =
      group.authority().trace(HandshakeTranscript::deserialize(wire));
  std::sort(traced.begin(), traced.end());
  EXPECT_EQ(traced, (std::vector<MemberId>{7, 8, 9}));
}

TEST(Transcript, MalformedInputRejected) {
  EXPECT_THROW((void)HandshakeTranscript::deserialize({}), CodecError);
  EXPECT_THROW((void)HandshakeTranscript::deserialize(to_bytes("junk")),
               CodecError);

  TestGroup group("ser-bad", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2)};
  auto outcomes =
      handshake({members[0], members[1]}, HandshakeOptions{}, "ser-bad");
  Bytes wire = outcomes[0].transcript.serialize();
  Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(wire.size() / 2));
  EXPECT_THROW((void)HandshakeTranscript::deserialize(truncated), CodecError);
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_THROW((void)HandshakeTranscript::deserialize(extended), CodecError);
}

}  // namespace
}  // namespace shs::core
