// Replay regression (paper §2/§7): Phase-II tags and Phase-III pairs are
// bound to the session's fresh k', so messages recorded from one session
// and fed verbatim into a new session — same group, same members, same
// positions — must never validate. The adversary here is the classic
// off-line MITM the paper defeats by requiring replayers to be live DGKA
// participants.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/handshake.h"
#include "fixture.h"
#include "net/adversary.h"
#include "net/faults.h"

namespace shs::core {
namespace {

using testing::TestGroup;

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() : group_("replay", GroupConfig{}) {
    for (MemberId id = 1; id <= 4; ++id) group_.admit(id);
    for (std::size_t i = 0; i < 4; ++i) members_.push_back(&group_.member(i));
  }

  /// Records a clean session under `session_seed` and returns its wire
  /// image (one slot per round and sender).
  std::vector<net::RecordedMessage> record_session(
      const HandshakeOptions& o, std::string_view session_seed) {
    net::RecordingAdversary tap;
    const auto outcomes = testing::handshake(members_, o, session_seed, &tap);
    for (const auto& out : outcomes) EXPECT_TRUE(out.full_success);
    return tap.records();
  }

  std::size_t phase2_round(const HandshakeOptions& o) const {
    return members_[0]->handshake_party(0, 4, o, to_bytes("probe"))
               ->total_rounds() -
           2;
  }

  TestGroup group_;
  std::vector<const Member*> members_;
};

TEST_F(ReplayTest, PriorSessionPhase2OnwardsNeverValidatesWholesale) {
  for (bool scheme2 : {false, true}) {
    HandshakeOptions o;
    o.self_distinction = scheme2;
    const std::size_t R = phase2_round(o);
    const auto prior = record_session(o, "replay-session-a");

    // Session B: fresh randomness, every Phase-II/III slot replaced by
    // session A's corresponding slot.
    net::FaultLog log;
    auto replay = std::make_unique<net::ReplayFault>(
        /*seed=*/1, net::ReplayFault::Config{0.0, /*cross_session=*/1.0},
        &log);
    replay->load_session(prior);
    net::ScheduledAdversary gated(std::move(replay),
                                  net::ScheduledAdversary::from_round(R));
    const auto outcomes =
        testing::handshake(members_, o, "replay-session-b", &gated);

    // 2 rounds (Phase II, III) x 4 senders x 4 receivers.
    EXPECT_EQ(log.count(net::FaultKind::kReplay), 32u)
        << "every Phase-II/III edge should have been replaced";
    for (std::size_t i = 0; i < 4; ++i) {
      const HandshakeOutcome& out = outcomes[i];
      ASSERT_TRUE(out.completed);
      EXPECT_EQ(out.confirmed_count(), 0u)
          << "scheme " << (scheme2 ? 2 : 1) << " position " << i
          << " accepted stale material";
      EXPECT_FALSE(out.full_success);
      for (std::size_t j = 0; j < 4; ++j) {
        if (j == i) continue;
        EXPECT_EQ(out.reason[j], FailureReason::kBadTag)
            << "position " << i << " slot " << j;
      }
    }
  }
}

TEST_F(ReplayTest, SingleReplayedPositionIsExcludedExactly) {
  for (bool scheme2 : {false, true}) {
    HandshakeOptions o;
    o.self_distinction = scheme2;
    const std::size_t R = phase2_round(o);
    const auto prior = record_session(o, "replay-session-c");

    for (std::size_t j = 0; j < 4; ++j) {
      auto replay = std::make_unique<net::ReplayFault>(
          /*seed=*/1, net::ReplayFault::Config{0.0, 1.0});
      replay->load_session(prior);
      // Replace only sender j's Phase-II/III slots.
      net::ScheduledAdversary gated(
          std::move(replay),
          [R, j](std::size_t round, std::size_t sender, std::size_t) {
            return round >= R && sender == j;
          });
      const auto outcomes =
          testing::handshake(members_, o, "replay-session-d", &gated);

      for (std::size_t i = 0; i < 4; ++i) {
        const HandshakeOutcome& out = outcomes[i];
        ASSERT_TRUE(out.completed);
        if (i == j) {
          // The impersonated position's own run is untouched upstream:
          // it still sees everyone's genuine tags.
          EXPECT_TRUE(out.full_success);
          continue;
        }
        EXPECT_FALSE(out.partner[j])
            << "scheme " << (scheme2 ? 2 : 1) << " receiver " << i
            << " accepted a replayed position";
        EXPECT_EQ(out.reason[j], FailureReason::kBadTag);
        for (std::size_t k = 0; k < 4; ++k) {
          if (k != j) {
            EXPECT_TRUE(out.partner[k])
                << "receiver " << i << " wrongly dropped " << k << " ("
                << to_string(out.reason[k]) << ")";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace shs::core
