// Cross-module integration tests: long-running group lifecycles with
// interleaved churn and handshakes, larger sessions, every DGKA under
// every GSIG, untraceable mode, transcript portability, and determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/errors.h"
#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;
using testing::handshake;

TEST(Integration, ChurnThenHandshakeLifecycle) {
  // A realistic life of a group: members come and go; handshakes keep
  // working among whoever is current.
  TestGroup group("life", GroupConfig{});
  for (MemberId id = 0; id < 6; ++id) (void)group.admit(id);
  group.remove(1);
  group.remove(4);
  (void)group.admit(10);
  group.remove(0);
  (void)group.admit(11);

  // Survivors: indices 2,3,5 of the original batch + the two newcomers.
  const Member* members[] = {&group.member(2), &group.member(3),
                             &group.member(5), &group.member(6),
                             &group.member(7)};
  for (const Member* m : members) ASSERT_TRUE(m->is_current());
  auto outcomes = handshake({members[0], members[1], members[2], members[3],
                             members[4]},
                            HandshakeOptions{}, "lifecycle");
  for (const auto& o : outcomes) EXPECT_TRUE(o.full_success);
  auto traced = group.authority().trace(outcomes[0].transcript);
  std::sort(traced.begin(), traced.end());
  EXPECT_EQ(traced, (std::vector<MemberId>{2, 3, 5, 10, 11}));
}

TEST(Integration, EveryDgkaUnderEveryGsig) {
  for (GsigKind gsig : {GsigKind::kAcjt, GsigKind::kKty}) {
    for (DgkaKind dgka : {DgkaKind::kBurmesterDesmedt, DgkaKind::kGdh}) {
      GroupConfig cfg;
      cfg.gsig = gsig;
      TestGroup group("combo", cfg);
      const Member* members[] = {&group.admit(1), &group.admit(2),
                                 &group.admit(3)};
      HandshakeOptions opts;
      opts.dgka = dgka;
      auto outcomes =
          handshake({members[0], members[1], members[2]}, opts, "combo");
      for (const auto& o : outcomes) {
        EXPECT_TRUE(o.full_success)
            << "gsig=" << static_cast<int>(gsig)
            << " dgka=" << static_cast<int>(dgka);
      }
    }
  }
}

TEST(Integration, SevenPartyHandshakeWithSelfDistinction) {
  TestGroup group("seven", GroupConfig{});
  std::vector<const Member*> members;
  for (MemberId id = 0; id < 7; ++id) members.push_back(&group.admit(id));
  HandshakeOptions opts;
  opts.self_distinction = true;
  auto outcomes = handshake(members, opts, "seven");
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.full_success);
    EXPECT_FALSE(o.self_distinction_violated);
  }
  EXPECT_EQ(group.authority().trace(outcomes[3].transcript).size(), 7u);
}

TEST(Integration, TranscriptIsPortableAcrossObservers) {
  // Every participant records the same transcript; the GA can trace from
  // any of them, and an eavesdropper's copy (entries only) works too.
  TestGroup group("portable", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3)};
  auto outcomes = handshake({members[0], members[1], members[2]},
                            HandshakeOptions{}, "portable");
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(outcomes[i].transcript.entries.size(),
              outcomes[0].transcript.entries.size());
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(outcomes[i].transcript.entries[j].theta,
                outcomes[0].transcript.entries[j].theta);
      EXPECT_EQ(outcomes[i].transcript.entries[j].delta,
                outcomes[0].transcript.entries[j].delta);
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(group.authority().trace(outcomes[i].transcript).size(), 3u);
  }
}

TEST(Integration, DeterministicGivenSeeds) {
  // Identical seeds => identical transcripts, byte for byte. This is what
  // makes every security experiment in this suite reproducible.
  auto run_once = [] {
    TestGroup group("det", GroupConfig{});
    const Member* members[] = {&group.admit(1), &group.admit(2)};
    return handshake({members[0], members[1]}, HandshakeOptions{}, "same");
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a[0].session_key, b[0].session_key);
  EXPECT_EQ(a[0].transcript.entries[0].theta, b[0].transcript.entries[0].theta);
  EXPECT_EQ(a[0].transcript.entries[1].delta, b[0].transcript.entries[1].delta);
}

TEST(Integration, UntraceableModeStillAuthenticatesPartially) {
  // Phases I+II only, mixed groups: cliques still find each other through
  // the tags alone (weaker guarantees, as §7's Remark allows).
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* members[] = {&a.admit(1), &a.admit(2), &b.admit(3),
                             &b.admit(4)};
  HandshakeOptions opts;
  opts.traceable = false;
  auto outcomes = handshake({members[0], members[1], members[2], members[3]},
                            opts, "p12-partial");
  EXPECT_EQ(outcomes[0].confirmed_count(), 2u);
  EXPECT_EQ(outcomes[2].confirmed_count(), 2u);
  EXPECT_TRUE(outcomes[0].partner[1]);
  EXPECT_TRUE(outcomes[2].partner[3]);
  EXPECT_TRUE(outcomes[0].transcript.entries[0].theta.empty());
}

TEST(Integration, SubsetDiffGroupSurvivesHeavyRevocation) {
  GroupConfig cfg;
  cfg.cgkd = CgkdKind::kSubsetDiff;
  cfg.cgkd_capacity = 32;
  TestGroup group("sd-heavy", cfg);
  for (MemberId id = 0; id < 12; ++id) (void)group.admit(id);
  for (MemberId id = 0; id < 12; id += 2) group.remove(id);
  const Member* members[] = {&group.member(1), &group.member(3),
                             &group.member(5)};
  auto outcomes = handshake({members[0], members[1], members[2]},
                            HandshakeOptions{}, "sd-heavy");
  for (const auto& o : outcomes) EXPECT_TRUE(o.full_success);
}

TEST(Integration, SessionKeysAreIndependentAcrossConcurrentSessions) {
  TestGroup group("concurrent", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3), &group.admit(4)};
  // Two disjoint pairs handshake "at the same time" (separate sessions).
  auto s1 = handshake({members[0], members[1]}, HandshakeOptions{}, "c1");
  auto s2 = handshake({members[2], members[3]}, HandshakeOptions{}, "c2");
  EXPECT_TRUE(s1[0].full_success);
  EXPECT_TRUE(s2[0].full_success);
  EXPECT_NE(s1[0].session_key, s2[0].session_key);
}

}  // namespace
}  // namespace shs::core
