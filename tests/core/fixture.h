// Shared test scaffolding for the GCD framework tests: builds groups,
// admits members, keeps everyone updated, and runs handshakes among
// arbitrary member subsets.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/authority.h"
#include "core/handshake.h"
#include "core/member.h"
#include "crypto/drbg.h"

namespace shs::core::testing {

class TestGroup {
 public:
  TestGroup(std::string name, const GroupConfig& config)
      : authority_(name, config, to_bytes("seed-" + name)), name_(name) {}

  Member& admit(MemberId id) {
    members_.push_back(authority_.admit(id));
    update_all();
    return *members_.back();
  }

  void remove(MemberId id) {
    authority_.remove(id);
    update_all();
  }

  void update_all() {
    for (auto& m : members_) (void)m->update();
  }

  [[nodiscard]] GroupAuthority& authority() { return authority_; }
  [[nodiscard]] Member& member(std::size_t index) { return *members_[index]; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

 private:
  GroupAuthority authority_;
  std::string name_;
  std::vector<std::unique_ptr<Member>> members_;
};

/// Builds participants for the given members (positions = vector order)
/// and runs the handshake.
inline std::vector<HandshakeOutcome> handshake(
    const std::vector<const Member*>& members, const HandshakeOptions& options,
    std::string_view session_seed, net::Adversary* adversary = nullptr,
    num::RandomSource* shuffle = nullptr,
    const net::DriverOptions& driver = {}) {
  const std::size_t m = members.size();
  std::vector<std::unique_ptr<HandshakeParticipant>> parts;
  parts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(
        members[i]->handshake_party(i, m, options, to_bytes(session_seed)));
  }
  std::vector<HandshakeParticipant*> ptrs;
  for (auto& p : parts) ptrs.push_back(p.get());
  return run_handshake(ptrs, adversary, shuffle, driver);
}

}  // namespace shs::core::testing
