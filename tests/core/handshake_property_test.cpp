// Security-property tests for GCD.Handshake, one block per row of the
// paper's Fig. 2: correctness, impersonation resistance, detection
// resistance / eavesdropper indistinguishability (shape equality),
// unlinkability sanity, partial success, self-distinction, and behaviour
// under an active network adversary.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/codec.h"
#include "common/errors.h"
#include "crypto/aead.h"
#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;
using testing::handshake;

// ---------------------------------------------------------------- Correctness

struct CorrectnessCase {
  std::string name;
  GsigKind gsig;
  DgkaKind dgka;
  std::size_t m;
};

class Correctness : public ::testing::TestWithParam<CorrectnessCase> {};

TEST_P(Correctness, SameGroupAlwaysSucceeds) {
  const auto& param = GetParam();
  GroupConfig cfg;
  cfg.gsig = param.gsig;
  TestGroup group("g", cfg);
  std::vector<const Member*> members;
  for (std::size_t i = 0; i < param.m; ++i) {
    members.push_back(&group.admit(100 + i));
  }
  HandshakeOptions opts;
  opts.dgka = param.dgka;
  opts.self_distinction = param.gsig == GsigKind::kKty;
  auto outcomes = handshake(members, opts, "correct-" + param.name);
  for (std::size_t i = 0; i < param.m; ++i) {
    EXPECT_TRUE(outcomes[i].completed);
    EXPECT_TRUE(outcomes[i].full_success) << "party " << i;
    EXPECT_FALSE(outcomes[i].self_distinction_violated);
    EXPECT_EQ(outcomes[i].session_key, outcomes[0].session_key);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Correctness,
    ::testing::Values(CorrectnessCase{"kty_bd_2", GsigKind::kKty,
                                      DgkaKind::kBurmesterDesmedt, 2},
                      CorrectnessCase{"kty_bd_3", GsigKind::kKty,
                                      DgkaKind::kBurmesterDesmedt, 3},
                      CorrectnessCase{"kty_bd_5", GsigKind::kKty,
                                      DgkaKind::kBurmesterDesmedt, 5},
                      CorrectnessCase{"kty_gdh_3", GsigKind::kKty,
                                      DgkaKind::kGdh, 3},
                      CorrectnessCase{"acjt_bd_3", GsigKind::kAcjt,
                                      DgkaKind::kBurmesterDesmedt, 3},
                      CorrectnessCase{"acjt_gdh_4", GsigKind::kAcjt,
                                      DgkaKind::kGdh, 4}),
    [](const auto& info) { return info.param.name; });

TEST(CorrectnessNegative, MixedGroupsFailWithoutPartialMode) {
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* members[] = {&a.admit(1), &a.admit(2), &b.admit(3)};
  HandshakeOptions opts;
  opts.allow_partial = false;
  auto outcomes = handshake({members[0], members[1], members[2]}, opts,
                            "mixed-strict");
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_FALSE(o.full_success);
    EXPECT_EQ(o.confirmed_count(), 0u);
    EXPECT_FALSE(o.failure.empty());
  }
}

// --------------------------------------------------------- Partial success §7

TEST(PartialSuccess, CliquesCompleteIndependently) {
  // 5 parties: 3 from alpha (positions 0,2,4), 2 from beta (1,3) — the
  // paper's §7 Extension: each clique completes and learns its own size.
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* members[] = {&a.admit(1), &b.admit(2), &a.admit(3),
                             &b.admit(4), &a.admit(5)};
  HandshakeOptions opts;  // allow_partial defaults true
  auto outcomes =
      handshake({members[0], members[1], members[2], members[3], members[4]},
                opts, "partial");

  const std::vector<bool> alpha_mask = {true, false, true, false, true};
  const std::vector<bool> beta_mask = {false, true, false, true, false};
  for (std::size_t i : {0u, 2u, 4u}) {
    EXPECT_EQ(outcomes[i].partner, alpha_mask) << i;
    EXPECT_EQ(outcomes[i].confirmed_count(), 3u);
    EXPECT_FALSE(outcomes[i].full_success);
  }
  for (std::size_t i : {1u, 3u}) {
    EXPECT_EQ(outcomes[i].partner, beta_mask) << i;
    EXPECT_EQ(outcomes[i].confirmed_count(), 2u);
  }
  // Session keys agree within a clique and differ across cliques.
  EXPECT_EQ(outcomes[0].session_key, outcomes[2].session_key);
  EXPECT_EQ(outcomes[0].session_key, outcomes[4].session_key);
  EXPECT_EQ(outcomes[1].session_key, outcomes[3].session_key);
  EXPECT_NE(outcomes[0].session_key, outcomes[1].session_key);
}

TEST(PartialSuccess, LonelyMemberConfirmsNobody) {
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* members[] = {&a.admit(1), &a.admit(2), &b.admit(3)};
  auto outcomes = handshake({members[0], members[1], members[2]},
                            HandshakeOptions{}, "lonely");
  EXPECT_EQ(outcomes[0].confirmed_count(), 2u);
  EXPECT_EQ(outcomes[1].confirmed_count(), 2u);
  EXPECT_EQ(outcomes[2].confirmed_count(), 0u);  // clique of one: Case 2
  EXPECT_FALSE(outcomes[2].failure.empty());
}

// ------------------------------------------- Resistance to impersonation

// A party with no credentials: plays DGKA honestly (public protocol) and
// bluffs Phases II/III with correctly-shaped randomness.
class RogueParty final : public net::RoundParty {
 public:
  RogueParty(const GroupAuthority& some_authority, std::size_t position,
             std::size_t m, const HandshakeOptions& opts, BytesView seed)
      : authority_(some_authority), options_(opts), rng_(seed) {
    dgka_ = global_dgka(opts.dgka, some_authority.config().level)
                .create_party(position, m, rng_);
  }

  [[nodiscard]] std::size_t total_rounds() const override {
    return dgka_->rounds() + 1 + (options_.traceable ? 1 : 0);
  }

  Bytes round_message(std::size_t round) override {
    if (round < dgka_->rounds()) return dgka_->message(round);
    if (round == dgka_->rounds()) return rng_.bytes(32);  // fake tag
    // Fake Phase III pair of the correct shape (sizes are public).
    ByteWriter w;
    w.bytes(crypto::Aead::random_ciphertext(
        authority_.gsig().signature_size_bound() + 4, rng_));
    w.bytes(authority_.pke().random_ciphertext(32, rng_));
    return w.take();
  }

  void deliver(std::size_t round, const std::vector<Bytes>& msgs) override {
    if (round < dgka_->rounds()) dgka_->receive(round, msgs);
  }

 private:
  const GroupAuthority& authority_;
  HandshakeOptions options_;
  crypto::HmacDrbg rng_;
  std::unique_ptr<dgka::DgkaParty> dgka_;
};

TEST(Impersonation, OutsiderWithoutCredentialsIsNeverConfirmed) {
  TestGroup group("g", GroupConfig{});
  Member& alice = group.admit(1);
  Member& bob = group.admit(2);
  HandshakeOptions opts;
  auto p0 = alice.handshake_party(0, 3, opts, to_bytes("imp"));
  auto p1 = bob.handshake_party(1, 3, opts, to_bytes("imp"));
  RogueParty rogue(group.authority(), 2, 3, opts, to_bytes("imp-rogue"));

  net::RoundParty* parties[] = {p0.get(), p1.get(), &rogue};
  net::run_protocol(parties);

  for (const auto* p : {p0.get(), p1.get()}) {
    const auto& o = p->outcome();
    EXPECT_TRUE(o.partner[0]);
    EXPECT_TRUE(o.partner[1]);
    EXPECT_FALSE(o.partner[2]) << "outsider was confirmed!";
    EXPECT_FALSE(o.full_success);
  }
}

TEST(Impersonation, OutsiderPlayingAllOtherRolesLearnsNothing) {
  // A lone honest member among m-1 rogues: nothing is confirmed, and the
  // honest member's Phase-III output is Case-2 randomness.
  TestGroup group("g", GroupConfig{});
  Member& alice = group.admit(1);
  HandshakeOptions opts;
  auto p0 = alice.handshake_party(0, 3, opts, to_bytes("swarm"));
  RogueParty r1(group.authority(), 1, 3, opts, to_bytes("swarm-1"));
  RogueParty r2(group.authority(), 2, 3, opts, to_bytes("swarm-2"));
  net::RoundParty* parties[] = {p0.get(), &r1, &r2};
  net::run_protocol(parties);
  EXPECT_EQ(p0->outcome().confirmed_count(), 0u);
  EXPECT_FALSE(p0->outcome().failure.empty());
}

// ----------------- Detection resistance / eavesdropper indistinguishability

// Records every message size per (round, sender).
class SizeRecorder final : public net::Adversary {
 public:
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& payload) override {
    if (receiver == 0) sizes.push_back({round, sender, payload.size()});
    return payload;
  }
  struct Entry {
    std::size_t round, sender, size;
    bool operator==(const Entry&) const = default;
  };
  std::vector<Entry> sizes;
};

TEST(DetectionResistance, SuccessAndFailureTranscriptsHaveIdenticalShape) {
  // An eavesdropper comparing a successful handshake (same group) with a
  // failed one (mixed groups) sees identical message-size sequences.
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* same[] = {&a.admit(1), &a.admit(2), &a.admit(3)};
  const Member* mixed[] = {&a.member(0), &a.member(1), &b.admit(9)};

  HandshakeOptions opts;
  opts.allow_partial = false;
  SizeRecorder rec_success;
  auto o1 = handshake({same[0], same[1], same[2]}, opts, "shape-s",
                      &rec_success);
  SizeRecorder rec_failure;
  auto o2 = handshake({mixed[0], mixed[1], mixed[2]}, opts, "shape-f",
                      &rec_failure);
  ASSERT_TRUE(o1[0].full_success);
  ASSERT_EQ(o2[0].confirmed_count(), 0u);
  EXPECT_EQ(rec_success.sizes, rec_failure.sizes);
}

TEST(DetectionResistance, FailedHandshakeEntriesAreUndecryptable) {
  // After a failed handshake the published (theta, delta) pairs decrypt to
  // nothing — even the group's own GA finds no trace.
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* members[] = {&a.admit(1), &b.admit(2)};
  auto outcomes =
      handshake({members[0], members[1]}, HandshakeOptions{}, "undec");
  EXPECT_EQ(outcomes[0].confirmed_count(), 0u);
  EXPECT_TRUE(a.authority().trace(outcomes[0].transcript).empty());
  EXPECT_TRUE(b.authority().trace(outcomes[0].transcript).empty());
}

// ------------------------------------------------------- Unlinkability sanity

TEST(Unlinkability, RepeatedHandshakesShareNoCiphertextMaterial) {
  TestGroup group("g", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2)};
  HandshakeOptions opts;
  opts.self_distinction = true;
  auto s1 = handshake({members[0], members[1]}, opts, "link-1");
  auto s2 = handshake({members[0], members[1]}, opts, "link-2");
  ASSERT_TRUE(s1[0].full_success);
  ASSERT_TRUE(s2[0].full_success);
  EXPECT_NE(s1[0].session_key, s2[0].session_key);
  EXPECT_NE(s1[0].transcript.session_tag, s2[0].transcript.session_tag);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NE(s1[0].transcript.entries[j].theta,
              s2[0].transcript.entries[j].theta);
    EXPECT_NE(s1[0].transcript.entries[j].delta,
              s2[0].transcript.entries[j].delta);
  }
}

// ------------------------------------------------------------ Self-distinction

TEST(SelfDistinction, DoubleRoleInsiderIsDetectedByScheme2) {
  TestGroup group("g", GroupConfig{});  // KTY by default
  Member& alice = group.admit(1);
  Member& bob = group.admit(2);
  HandshakeOptions opts;
  opts.self_distinction = true;

  // Bob plays positions 1 AND 2 with the same credential.
  auto p0 = alice.handshake_party(0, 3, opts, to_bytes("dbl"));
  auto p1 = bob.handshake_party(1, 3, opts, to_bytes("dbl-a"));
  auto p2 = bob.handshake_party(2, 3, opts, to_bytes("dbl-b"));
  HandshakeParticipant* parts[] = {p0.get(), p1.get(), p2.get()};
  auto outcomes = run_handshake(parts);

  EXPECT_TRUE(outcomes[0].self_distinction_violated);
  EXPECT_FALSE(outcomes[0].partner[1]);
  EXPECT_FALSE(outcomes[0].partner[2]);
  EXPECT_FALSE(outcomes[0].full_success);
}

TEST(SelfDistinction, Scheme1DoesNotDetectTheSameAttack) {
  // The motivating gap (§1.1): without self-distinction a malicious
  // insider impersonates several group members undetected.
  TestGroup group("g", GroupConfig{});
  Member& alice = group.admit(1);
  Member& bob = group.admit(2);
  HandshakeOptions opts;
  opts.self_distinction = false;  // Scheme 1
  auto p0 = alice.handshake_party(0, 3, opts, to_bytes("s1"));
  auto p1 = bob.handshake_party(1, 3, opts, to_bytes("s1-a"));
  auto p2 = bob.handshake_party(2, 3, opts, to_bytes("s1-b"));
  HandshakeParticipant* parts[] = {p0.get(), p1.get(), p2.get()};
  auto outcomes = run_handshake(parts);
  EXPECT_TRUE(outcomes[0].full_success) << "scheme 1 is expected to be fooled";
  EXPECT_FALSE(outcomes[0].self_distinction_violated);
}

TEST(SelfDistinction, HonestDistinctMembersAreNotFlagged) {
  TestGroup group("g", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3), &group.admit(4)};
  HandshakeOptions opts;
  opts.self_distinction = true;
  auto outcomes = handshake({members[0], members[1], members[2], members[3]},
                            opts, "honest-sd");
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.full_success);
    EXPECT_FALSE(o.self_distinction_violated);
  }
  // Tracing a self-distinction transcript works too.
  auto traced = group.authority().trace(outcomes[0].transcript);
  EXPECT_EQ(traced.size(), 4u);
}

// ----------------------------------------------------------- Active adversary

class TamperRound0 final : public net::Adversary {
 public:
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& payload) override {
    if (round == 0 && sender == 0 && receiver == 1 && !payload.empty()) {
      Bytes bad = payload;
      bad[0] ^= 0x01;
      return bad;
    }
    return payload;
  }
};

TEST(ActiveAdversary, MitmOnPhase1NeverYieldsFalseConfirmation) {
  TestGroup group("g", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3)};
  TamperRound0 mitm;
  auto outcomes = handshake({members[0], members[1], members[2]},
                            HandshakeOptions{}, "mitm", &mitm);
  // Party 1 saw a different Phase-I view: its k' (or sid) diverges, so at
  // minimum the tag exchange with party 1 must not fully succeed. What is
  // forbidden is a false full success everywhere.
  bool all_full = true;
  for (const auto& o : outcomes) all_full = all_full && o.full_success;
  EXPECT_FALSE(all_full);
  // And nobody crashed: every participant completed.
  for (const auto& o : outcomes) EXPECT_TRUE(o.completed);
}

class CrossSessionReplayer final : public net::Adversary {
 public:
  explicit CrossSessionReplayer(Bytes recorded_tag, std::size_t tag_round)
      : tag_(std::move(recorded_tag)), round_(tag_round) {}
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& payload) override {
    if (round == round_ && sender == 2) return tag_;  // inject stale tag
    (void)receiver;
    return payload;
  }

 private:
  Bytes tag_;
  std::size_t round_;
};

class TagRecorder final : public net::Adversary {
 public:
  explicit TagRecorder(std::size_t tag_round) : round_(tag_round) {}
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& payload) override {
    if (round == round_ && sender == 2 && receiver == 0) tag = payload;
    return payload;
  }
  Bytes tag;

 private:
  std::size_t round_;
};

TEST(ActiveAdversary, ReplayedPhase2TagFromOldSessionRejected) {
  TestGroup group("g", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3)};
  const std::size_t tag_round = 2;  // BD: rounds 0,1 are Phase I
  TagRecorder recorder(tag_round);
  auto s1 = handshake({members[0], members[1], members[2]},
                      HandshakeOptions{}, "replay-src", &recorder);
  ASSERT_TRUE(s1[0].full_success);
  ASSERT_FALSE(recorder.tag.empty());

  CrossSessionReplayer replayer(recorder.tag, tag_round);
  auto s2 = handshake({members[0], members[1], members[2]},
                      HandshakeOptions{}, "replay-dst", &replayer);
  // Position 2's stale tag cannot validate under the fresh k'.
  EXPECT_FALSE(s2[0].partner[2]);
  EXPECT_FALSE(s2[1].partner[2]);
}

TEST(ActiveAdversary, AsyncDeliveryOrderDoesNotChangeOutcomes) {
  TestGroup group("g", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3), &group.admit(4)};
  num::TestRng shuffle(42);
  auto outcomes = handshake({members[0], members[1], members[2], members[3]},
                            HandshakeOptions{}, "async", nullptr, &shuffle);
  for (const auto& o : outcomes) EXPECT_TRUE(o.full_success);
}

}  // namespace
}  // namespace shs::core
