// Statistical sanity checks behind the detection-resistance and
// eavesdropper-indistinguishability claims: the Phase-III bytes of real
// (Case 1) and simulated (Case 2) handshakes must look alike to simple
// distinguishers — equal lengths (exact) and byte-frequency statistics
// within noise (coarse chi-square).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;
using testing::handshake;

/// Sum over byte values of (observed - expected)^2 / expected.
double chi_square(const Bytes& data) {
  std::array<double, 256> counts{};
  for (std::uint8_t b : data) counts[b] += 1.0;
  const double expected = static_cast<double>(data.size()) / 256.0;
  double chi = 0;
  for (double c : counts) chi += (c - expected) * (c - expected) / expected;
  return chi;
}

Bytes phase3_bytes(const std::vector<HandshakeOutcome>& outcomes) {
  Bytes all;
  for (const auto& e : outcomes[0].transcript.entries) {
    append(all, e.theta);
    append(all, e.delta);
  }
  return all;
}

TEST(Statistical, Case1AndCase2BytesAreBothUniformish) {
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* alphas[] = {&a.admit(1), &a.admit(2), &a.admit(3)};
  const Member* betas[] = {&b.admit(4)};

  Bytes case1, case2;
  HandshakeOptions opts;
  opts.allow_partial = false;
  for (int round = 0; round < 6; ++round) {
    const std::string salt = "stat-" + std::to_string(round);
    auto ok = handshake({alphas[0], alphas[1], alphas[2]}, opts, salt + "s");
    ASSERT_TRUE(ok[0].full_success);
    append(case1, phase3_bytes(ok));
    auto bad =
        handshake({alphas[0], alphas[1], betas[0]}, opts, salt + "f");
    ASSERT_EQ(bad[0].confirmed_count(), 0u);
    append(case2, phase3_bytes(bad));
  }

  // Identical total ciphertext volume per run type.
  EXPECT_EQ(case1.size(), case2.size());
  ASSERT_GT(case1.size(), 20000u);

  // Both streams pass the same coarse uniformity threshold. For uniform
  // bytes, chi-square has mean 255 and stddev ~22.6; 400 is a ~6-sigma
  // cap that catches any structured (non-encrypted) leakage immediately.
  const double chi1 = chi_square(case1);
  const double chi2 = chi_square(case2);
  EXPECT_LT(chi1, 400.0) << "real Phase-III bytes look non-uniform";
  EXPECT_LT(chi2, 400.0) << "simulated Phase-III bytes look non-uniform";
}

TEST(Statistical, TagsOfFailedRunsAreNotConstant) {
  // A failed participant publishes fresh randomness each session, never a
  // repeated or degenerate tag that would mark "failure" on the wire.
  TestGroup a("alpha", GroupConfig{});
  TestGroup b("beta", GroupConfig{});
  const Member* pair[] = {&a.admit(1), &b.admit(2)};
  HandshakeOptions opts;
  Bytes prev;
  for (int round = 0; round < 4; ++round) {
    auto outcomes = handshake({pair[0], pair[1]}, opts,
                              "fail-" + std::to_string(round));
    EXPECT_EQ(outcomes[0].confirmed_count(), 0u);
    Bytes current = phase3_bytes(outcomes);
    EXPECT_NE(current, prev);
    prev = std::move(current);
  }
}

TEST(Statistical, SessionKeysPassByteBalance) {
  // Keys from many handshakes, concatenated, should be balanced too.
  TestGroup g("keys", GroupConfig{});
  const Member* pair[] = {&g.admit(1), &g.admit(2)};
  HandshakeOptions opts;
  opts.traceable = false;  // fast mode: many iterations
  Bytes keys;
  for (int round = 0; round < 64; ++round) {
    auto outcomes =
        handshake({pair[0], pair[1]}, opts, "key-" + std::to_string(round));
    ASSERT_TRUE(outcomes[0].full_success);
    append(keys, outcomes[0].session_key);
  }
  // 2 KiB of key material: every byte value family should appear; a crude
  // balance check on the top/bottom nibble distribution.
  std::array<int, 16> hi{}, lo{};
  for (std::uint8_t b : keys) {
    ++hi[b >> 4];
    ++lo[b & 0x0f];
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_GT(hi[i], 0) << i;
    EXPECT_GT(lo[i], 0) << i;
  }
}

}  // namespace
}  // namespace shs::core
