// Wallet (multi-group membership, paper §2 generalization) tests:
// membership management, per-group handshakes, revocation pruning, and
// the shared-group probe that reveals nothing about non-shared groups.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "core/wallet.h"
#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;

struct WalletFixture : ::testing::Test {
  WalletFixture()
      : fbi("fbi", GroupConfig{}),
        cia("cia", GroupConfig{}),
        mi6("mi6", GroupConfig{}) {}

  TestGroup fbi, cia, mi6;
};

TEST_F(WalletFixture, MembershipManagement) {
  Wallet alice("alice");
  alice.add_membership(fbi.authority().admit(1));
  alice.add_membership(cia.authority().admit(1));
  EXPECT_EQ(alice.update_all(), (std::vector<std::string>{"cia", "fbi"}));
  EXPECT_TRUE(alice.has_group("fbi"));
  EXPECT_FALSE(alice.has_group("mi6"));
  EXPECT_THROW((void)alice.member("mi6"), ProtocolError);
  EXPECT_THROW(alice.add_membership(fbi.authority().admit(99)),
               ProtocolError);  // duplicate group
}

TEST_F(WalletFixture, RevokedMembershipIsPruned) {
  Wallet alice("alice");
  alice.add_membership(fbi.authority().admit(1));
  alice.add_membership(cia.authority().admit(1));
  (void)alice.update_all();
  cia.authority().remove(1);
  EXPECT_EQ(alice.update_all(), (std::vector<std::string>{"fbi"}));
  EXPECT_FALSE(alice.has_group("cia"));
}

TEST_F(WalletFixture, PerGroupHandshake) {
  Wallet alice("alice");
  Wallet bob("bob");
  alice.add_membership(fbi.authority().admit(1));
  bob.add_membership(fbi.authority().admit(2));
  (void)alice.update_all();
  (void)bob.update_all();
  HandshakeOptions opts;
  auto p0 = alice.handshake_party("fbi", 0, 2, opts, to_bytes("w"));
  auto p1 = bob.handshake_party("fbi", 1, 2, opts, to_bytes("w"));
  HandshakeParticipant* parts[] = {p0.get(), p1.get()};
  auto outcomes = run_handshake(parts);
  EXPECT_TRUE(outcomes[0].full_success);
  EXPECT_TRUE(outcomes[1].full_success);
}

TEST_F(WalletFixture, ProbeFindsExactlyTheSharedGroups) {
  Wallet alice("alice");
  Wallet bob("bob");
  alice.add_membership(fbi.authority().admit(1));
  alice.add_membership(cia.authority().admit(1));
  bob.add_membership(cia.authority().admit(2));
  bob.add_membership(mi6.authority().admit(2));
  (void)alice.update_all();
  (void)bob.update_all();

  const auto shared = probe_shared_groups(alice, bob, {"fbi", "cia", "mi6"},
                                          to_bytes("probe"));
  EXPECT_EQ(shared, (std::vector<std::string>{"cia"}));
}

TEST_F(WalletFixture, ProbeWithNoOverlapFindsNothing) {
  Wallet alice("alice");
  Wallet bob("bob");
  alice.add_membership(fbi.authority().admit(1));
  bob.add_membership(mi6.authority().admit(2));
  (void)alice.update_all();
  (void)bob.update_all();
  EXPECT_TRUE(probe_shared_groups(alice, bob, {"fbi", "cia", "mi6"},
                                  to_bytes("probe-none"))
                  .empty());
}

TEST_F(WalletFixture, ProbeHandlesUnknownGroupNames) {
  Wallet alice("alice");
  Wallet bob("bob");
  alice.add_membership(fbi.authority().admit(1));
  bob.add_membership(fbi.authority().admit(2));
  (void)alice.update_all();
  (void)bob.update_all();
  const auto shared = probe_shared_groups(
      alice, bob, {"nonexistent", "fbi"}, to_bytes("probe-unknown"));
  EXPECT_EQ(shared, (std::vector<std::string>{"fbi"}));
}

}  // namespace
}  // namespace shs::core
