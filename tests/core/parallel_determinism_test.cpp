// Determinism regression for the parallel protocol driver: with a fixed
// session seed, a handshake run serially and one run with a thread pool
// must produce byte-identical wire transcripts and identical outcomes.
// The parallel driver only reorders *computation* (each party's
// round_message on a worker thread); message content and delivery are
// position-indexed, so nothing observable may change.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;

/// Passive adversary that records every (round, sender, payload) as seen
/// by receiver 0 — i.e. the wire transcript of the session.
class RecordingAdversary final : public net::Adversary {
 public:
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& payload) override {
    if (receiver == 0) transcript_.emplace_back(round, sender, payload);
    return payload;
  }

  [[nodiscard]] const std::vector<std::tuple<std::size_t, std::size_t, Bytes>>&
  transcript() const {
    return transcript_;
  }

 private:
  std::vector<std::tuple<std::size_t, std::size_t, Bytes>> transcript_;
};

struct SessionRun {
  std::vector<HandshakeOutcome> outcomes;
  std::vector<std::tuple<std::size_t, std::size_t, Bytes>> transcript;
};

SessionRun run_with_threads(TestGroup& group, std::size_t m, std::size_t threads) {
  std::vector<const Member*> members;
  for (std::size_t i = 0; i < m; ++i) members.push_back(&group.member(i));
  HandshakeOptions options;
  RecordingAdversary recorder;
  net::DriverOptions driver;
  driver.threads = threads;
  SessionRun run;
  run.outcomes = testing::handshake(members, options, "det-seed", &recorder,
                                    nullptr, driver);
  run.transcript = recorder.transcript();
  return run;
}

TEST(ParallelDeterminism, SerialAndThreadedRunsAreByteIdentical) {
  GroupConfig config;  // KTY + LKH at test parameters
  TestGroup group("par-det", config);
  for (std::size_t i = 0; i < 8; ++i) group.admit(100 + i);

  for (std::size_t m : {2u, 4u, 8u}) {
    const SessionRun serial = run_with_threads(group, m, 1);
    const SessionRun threaded = run_with_threads(group, m, 4);

    ASSERT_EQ(serial.outcomes.size(), m);
    ASSERT_EQ(threaded.outcomes.size(), m);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(serial.outcomes[i].full_success,
                threaded.outcomes[i].full_success)
          << "m=" << m << " position " << i;
      EXPECT_EQ(serial.outcomes[i].partner, threaded.outcomes[i].partner);
      EXPECT_EQ(serial.outcomes[i].session_key,
                threaded.outcomes[i].session_key);
    }
    EXPECT_TRUE(serial.outcomes[0].full_success) << "m=" << m;

    // The wire transcripts (every round's broadcast, as delivered to
    // position 0) must match byte for byte.
    EXPECT_EQ(serial.transcript, threaded.transcript) << "m=" << m;
  }
}

TEST(ParallelDeterminism, ThreadCountZeroUsesHardwareAndStillSucceeds) {
  GroupConfig config;
  TestGroup group("par-hw", config);
  for (std::size_t i = 0; i < 4; ++i) group.admit(200 + i);
  const SessionRun serial = run_with_threads(group, 4, 1);
  const SessionRun hw = run_with_threads(group, 4, 0);  // 0 = all hardware threads
  ASSERT_EQ(serial.outcomes.size(), hw.outcomes.size());
  for (std::size_t i = 0; i < hw.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].session_key, hw.outcomes[i].session_key);
  }
  EXPECT_EQ(serial.transcript, hw.transcript);
}

}  // namespace
}  // namespace shs::core
