// Negative-path MAC coverage (paper §7 Phase II): the HMAC tag binds its
// sender's position AND the Phase-I messages that position sent, under
// the fresh k'. Flipping a single bit of a tag in flight, or swapping the
// Phase-I material the tag commits to, must flip tag_valid_ for exactly
// the affected position at exactly the affected receivers — for every
// position, in both schemes.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/handshake.h"
#include "fixture.h"
#include "net/protocol.h"

namespace shs::core {
namespace {

using testing::TestGroup;

class MacNegativeTest : public ::testing::Test {
 protected:
  MacNegativeTest() : group_("mac-neg", GroupConfig{}) {
    for (MemberId id = 1; id <= 4; ++id) group_.admit(id);
    for (std::size_t i = 0; i < 4; ++i) {
      members_.push_back(&group_.member(i));
    }
  }

  HandshakeOptions options(bool scheme2) const {
    HandshakeOptions o;
    o.self_distinction = scheme2;
    return o;
  }

  /// Phase-II round index R for these options (probe participant).
  std::size_t phase2_round(const HandshakeOptions& o) const {
    return members_[0]->handshake_party(0, 4, o, to_bytes("probe"))
               ->total_rounds() -
           2;
  }

  TestGroup group_;
  std::vector<const Member*> members_;
};

/// Flips bit 0 of byte 0 of every copy of sender `j`'s round-`r` message
/// (uniform: all receivers see the same mutated payload).
class UniformFlip final : public net::Adversary {
 public:
  UniformFlip(std::size_t round, std::size_t sender)
      : round_(round), sender_(sender) {}
  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t, const Bytes& in) override {
    if (round != round_ || sender != sender_ || in.empty()) return in;
    Bytes out = in;
    out[0] ^= 1u;
    return out;
  }

 private:
  std::size_t round_;
  std::size_t sender_;
};

TEST_F(MacNegativeTest, SingleFlippedTagBitExcludesExactlyItsSender) {
  for (bool scheme2 : {false, true}) {
    const HandshakeOptions o = options(scheme2);
    const std::size_t R = phase2_round(o);
    for (std::size_t j = 0; j < 4; ++j) {
      UniformFlip flip(R, j);
      const auto outcomes =
          testing::handshake(members_, o, "mac-neg-tag", &flip);

      // Every honest receiver excludes exactly j, with reason kBadTag.
      for (std::size_t i = 0; i < 4; ++i) {
        const HandshakeOutcome& out = outcomes[i];
        ASSERT_TRUE(out.completed);
        if (i == j) {
          // The sender's own slot is self-evident: it still sees a fully
          // successful handshake (its peers' tags were untouched).
          EXPECT_TRUE(out.full_success)
              << "scheme " << (scheme2 ? 2 : 1) << " sender " << j;
          continue;
        }
        EXPECT_FALSE(out.full_success);
        for (std::size_t k = 0; k < 4; ++k) {
          if (k == j) {
            EXPECT_FALSE(out.partner[k])
                << "scheme " << (scheme2 ? 2 : 1) << " receiver " << i;
            EXPECT_EQ(out.reason[k], FailureReason::kBadTag);
          } else {
            EXPECT_TRUE(out.partner[k])
                << "scheme " << (scheme2 ? 2 : 1) << " receiver " << i
                << " wrongly dropped " << k << " ("
                << to_string(out.reason[k]) << ")";
          }
        }
        // The flip was delivered uniformly, so all transcripts agree and
        // the surviving clique still shares one key.
        EXPECT_EQ(out.session_key, outcomes[j].session_key);
      }
    }
  }
}

/// Substitutes sender `j`'s round-0 broadcast with ANOTHER sender's valid
/// round-0 broadcast, delivered to receiver `i` only. The payload is a
/// well-formed group element (bit flips would already die in subgroup
/// validation), so only the MAC's transcript binding can catch it.
class SwapPhase1Element final : public net::Adversary {
 public:
  SwapPhase1Element(std::size_t sender, std::size_t receiver,
                    std::size_t source)
      : sender_(sender), receiver_(receiver), source_(source) {}

  std::optional<Bytes> intercept(std::size_t round, std::size_t sender,
                                 std::size_t receiver,
                                 const Bytes& in) override {
    if (round != 0) return in;
    if (sender == source_ && captured_.empty()) captured_ = in;
    if (sender == sender_ && receiver == receiver_) {
      // The serial driver walks receiver 0's edges (all senders) first,
      // so the source broadcast is always captured by now.
      EXPECT_FALSE(captured_.empty());
      return captured_;
    }
    return in;
  }

 private:
  std::size_t sender_;
  std::size_t receiver_;
  std::size_t source_;
  Bytes captured_;
};

TEST_F(MacNegativeTest, TagBindsThePhase1TranscriptPerReceiver) {
  for (bool scheme2 : {false, true}) {
    const HandshakeOptions o = options(scheme2);
    for (std::size_t j = 0; j < 4; ++j) {
      // A non-adjacent receiver: its Burmester-Desmedt key only depends
      // on its ring neighbours' z-values, so swapping z_j leaves the key
      // intact and isolates the MAC's transcript binding.
      const std::size_t i = (j + 2) % 4;
      const std::size_t source = j == 0 ? 1 : 0;
      SwapPhase1Element swap(j, i, source);
      const auto outcomes =
          testing::handshake(members_, o, "mac-neg-bind", &swap);

      const HandshakeOutcome& at_i = outcomes[i];
      ASSERT_TRUE(at_i.completed);
      EXPECT_FALSE(at_i.partner[j]);
      EXPECT_EQ(at_i.reason[j], FailureReason::kBadTag)
          << "scheme " << (scheme2 ? 2 : 1) << " receiver " << i
          << ": transcript binding missed the swapped element";
      EXPECT_TRUE(at_i.partner[i]);

      if (!scheme2) {
        // Scheme 1: the damage is exactly {j} at exactly {i}; everyone
        // else still sees a clean session.
        for (std::size_t k = 0; k < 4; ++k) {
          if (k != j) {
            EXPECT_TRUE(at_i.partner[k]) << "receiver " << i;
          }
          if (k != i) {
            EXPECT_TRUE(outcomes[k].full_success)
                << "receiver " << k << ": " << outcomes[k].failure;
          }
        }
      } else {
        // Scheme 2 binds signatures to the session transcript, so i's
        // diverged view cascades: every peer signature fails against i's
        // T7 base, and i's own signature fails against everyone else's.
        for (std::size_t k = 0; k < 4; ++k) {
          if (k == i || k == j) continue;
          EXPECT_EQ(at_i.reason[k], FailureReason::kBadSignature)
              << "receiver " << i << " slot " << k;
          EXPECT_FALSE(outcomes[k].partner[i]) << "receiver " << k;
          EXPECT_EQ(outcomes[k].reason[i], FailureReason::kBadSignature);
          EXPECT_TRUE(outcomes[k].partner[j])
              << "receiver " << k << " wrongly dropped honest " << j;
        }
        EXPECT_EQ(at_i.confirmed_count(), 1u);
      }
    }
  }
}

}  // namespace
}  // namespace shs::core
