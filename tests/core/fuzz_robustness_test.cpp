// Failure-injection / fuzz-style robustness tests: an adversary mutating,
// truncating, replacing or dropping arbitrary protocol messages must never
// crash a participant, and must never manufacture a confirmation of a
// party whose messages were forged. (The paper's model hands the network
// to the adversary; these sweeps are the engineering counterpart.)
#include <gtest/gtest.h>

#include "bigint/random.h"
#include "common/errors.h"
#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;
using testing::handshake;

/// Randomized mutator: with probability ~1/3 per (round, sender, receiver)
/// edge, either flips a random byte, truncates, extends, or drops.
class FuzzAdversary final : public net::Adversary {
 public:
  explicit FuzzAdversary(std::uint64_t seed) : rng_(seed) {}

  std::optional<Bytes> intercept(std::size_t, std::size_t, std::size_t,
                                 const Bytes& payload) override {
    if (payload.empty()) return payload;
    switch (rng_.below_u64(9)) {
      case 0: {  // bit flip
        Bytes out = payload;
        out[rng_.below_u64(out.size())] ^= static_cast<std::uint8_t>(
            1u << rng_.below_u64(8));
        return out;
      }
      case 1: {  // truncate
        Bytes out = payload;
        out.resize(rng_.below_u64(out.size()));
        return out;
      }
      case 2: {  // extend with junk
        Bytes out = payload;
        const Bytes junk = rng_.bytes(1 + rng_.below_u64(16));
        append(out, junk);
        return out;
      }
      case 3:  // drop
        return std::nullopt;
      case 4: {  // full replacement of same size
        return rng_.bytes(payload.size());
      }
      default:
        return payload;  // pass through
    }
  }

 private:
  num::TestRng rng_;
};

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, MutatedNetworkNeverCrashesOrForgesConfirmations) {
  TestGroup group("fuzz", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3)};
  FuzzAdversary adversary(GetParam());
  std::vector<HandshakeOutcome> outcomes;
  ASSERT_NO_THROW(outcomes = handshake({members[0], members[1], members[2]},
                                       HandshakeOptions{}, "fuzz", &adversary));
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.completed);
    // Whatever the adversary did, a party either confirmed genuine
    // same-group peers or nothing; there are no non-members here to be
    // falsely confirmed, so the only hard invariant is completion plus
    // key consistency among mutually-confirmed parties.
  }
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      if (outcomes[i].partner[j] && outcomes[j].partner[i] &&
          !outcomes[i].session_key.empty() &&
          !outcomes[j].session_key.empty()) {
        // Mutual confirmation must imply a shared key (same k', same sid).
        EXPECT_EQ(outcomes[i].session_key, outcomes[j].session_key)
            << "mutually confirmed parties disagree on the session key";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(FuzzOutsider, ForgedMessagesNeverImpersonateAMember) {
  // Replace everything position 2 sends with adversarial bytes of the
  // same length, across many seeds: positions 0/1 must never confirm 2.
  TestGroup group("forge", GroupConfig{});
  const Member* members[] = {&group.admit(1), &group.admit(2),
                             &group.admit(3)};
  class ReplaceSender final : public net::Adversary {
   public:
    explicit ReplaceSender(std::uint64_t seed) : rng_(seed) {}
    std::optional<Bytes> intercept(std::size_t, std::size_t sender,
                                   std::size_t receiver,
                                   const Bytes& payload) override {
      if (sender == 2 && receiver != 2 && !payload.empty()) {
        return rng_.bytes(payload.size());
      }
      return payload;
    }

   private:
    num::TestRng rng_;
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ReplaceSender adversary(seed);
    auto outcomes = handshake({members[0], members[1], members[2]},
                              HandshakeOptions{},
                              "forge" + std::to_string(seed), &adversary);
    EXPECT_FALSE(outcomes[0].partner[2]) << seed;
    EXPECT_FALSE(outcomes[1].partner[2]) << seed;
  }
}

TEST(FuzzTranscript, TamperedTranscriptNeverMisleadsTracing) {
  // Bit-flip every byte region of a genuine transcript: tracing either
  // skips the damaged entry or still recovers a *correct* identity —
  // never a wrong one (no-misattribution, engineering flavour).
  TestGroup group("trace-fuzz", GroupConfig{});
  const Member* members[] = {&group.admit(10), &group.admit(20)};
  auto outcomes =
      handshake({members[0], members[1]}, HandshakeOptions{}, "trace-fuzz");
  ASSERT_TRUE(outcomes[0].full_success);
  const HandshakeTranscript& good = outcomes[0].transcript;

  num::TestRng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    HandshakeTranscript bad = good;
    auto& entry = bad.entries[rng.below_u64(bad.entries.size())];
    Bytes& field = (rng.next_u64() & 1) ? entry.theta : entry.delta;
    if (field.empty()) continue;
    field[rng.below_u64(field.size())] ^= 0x01;
    std::vector<MemberId> traced;
    ASSERT_NO_THROW(traced = group.authority().trace(bad));
    for (MemberId id : traced) {
      EXPECT_TRUE(id == 10 || id == 20) << "misattributed to " << id;
    }
  }
}

}  // namespace
}  // namespace shs::core
