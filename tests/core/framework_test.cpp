// GCD framework plumbing tests: CreateGroup / AdmitMember / RemoveUser /
// Update across every GSIG x CGKD combination, bulletin-board mechanics,
// and the §3 revocation-redundancy attack (leaked CGKD key + revoked GSIG
// credential must fail).
#include <gtest/gtest.h>

#include "common/errors.h"
#include "fixture.h"

namespace shs::core {
namespace {

using testing::TestGroup;
using testing::handshake;

struct ComboCase {
  std::string name;
  GsigKind gsig;
  CgkdKind cgkd;
};

const ComboCase kCombos[] = {
    {"kty_lkh", GsigKind::kKty, CgkdKind::kLkh},
    {"kty_star", GsigKind::kKty, CgkdKind::kStar},
    {"kty_sd", GsigKind::kKty, CgkdKind::kSubsetDiff},
    {"acjt_lkh", GsigKind::kAcjt, CgkdKind::kLkh},
    {"acjt_star", GsigKind::kAcjt, CgkdKind::kStar},
    {"acjt_sd", GsigKind::kAcjt, CgkdKind::kSubsetDiff},
};

class FrameworkCombos : public ::testing::TestWithParam<ComboCase> {
 protected:
  GroupConfig config() const {
    GroupConfig c;
    c.gsig = GetParam().gsig;
    c.cgkd = GetParam().cgkd;
    return c;
  }
};

TEST_P(FrameworkCombos, AdmitUpdateHandshake) {
  TestGroup group("g", config());
  Member& alice = group.admit(1);
  Member& bob = group.admit(2);
  EXPECT_TRUE(alice.is_current());
  EXPECT_TRUE(bob.is_current());
  EXPECT_EQ(group.authority().member_count(), 2u);

  HandshakeOptions opts;
  auto outcomes = handshake({&alice, &bob}, opts, "combo-run");
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_TRUE(o.full_success);
    EXPECT_EQ(o.confirmed_count(), 2u);
  }
  EXPECT_EQ(outcomes[0].session_key, outcomes[1].session_key);
}

TEST_P(FrameworkCombos, RemoveUserCutsBothLayers) {
  TestGroup group("g", config());
  Member& alice = group.admit(1);
  Member& bob = group.admit(2);
  Member& carol = group.admit(3);
  group.remove(3);

  EXPECT_TRUE(alice.is_current());
  EXPECT_TRUE(bob.is_current());
  EXPECT_TRUE(carol.revoked());
  EXPECT_FALSE(carol.is_current());
  EXPECT_THROW((void)carol.group_key(), ProtocolError);
  EXPECT_THROW(
      (void)carol.handshake_party(0, 2, HandshakeOptions{}, to_bytes("s")),
      ProtocolError);

  // Remaining members still handshake fine.
  auto outcomes = handshake({&alice, &bob}, HandshakeOptions{}, "post-remove");
  EXPECT_TRUE(outcomes[0].full_success);
  EXPECT_TRUE(outcomes[1].full_success);
}

INSTANTIATE_TEST_SUITE_P(Combos, FrameworkCombos, ::testing::ValuesIn(kCombos),
                         [](const auto& info) { return info.param.name; });

GroupConfig default_config() { return GroupConfig{}; }

TEST(Framework, StaleMemberMustUpdateBeforeHandshake) {
  GroupConfig cfg = default_config();
  GroupAuthority ga("g", cfg, to_bytes("seed"));
  auto alice = ga.admit(1);
  auto bob = ga.admit(2);   // alice has not seen bob's bundle yet
  EXPECT_FALSE(alice->is_current());
  EXPECT_THROW(
      (void)alice->handshake_party(0, 2, HandshakeOptions{}, to_bytes("s")),
      ProtocolError);
  EXPECT_TRUE(alice->update());
  EXPECT_TRUE(alice->is_current());
  (void)bob;
}

TEST(Framework, BulletinCarriesOneBundlePerMembershipEvent) {
  GroupConfig cfg = default_config();
  GroupAuthority ga("g", cfg, to_bytes("seed"));
  EXPECT_TRUE(ga.bulletin().empty());
  auto a = ga.admit(1);
  auto b = ga.admit(2);
  EXPECT_EQ(ga.bulletin().size(), 2u);
  ga.remove(2);
  EXPECT_EQ(ga.bulletin().size(), 3u);
  (void)a;
  (void)b;
}

TEST(Framework, Section3RevocationAttackDefeated) {
  // §3: suppose GSIG revocation were dropped in favour of CGKD-only
  // revocation. A malicious unrevoked member could leak the current group
  // key k to a revoked member, who could then fool legitimate members.
  // With both layers in place the attack dies in Phase III: the leaked key
  // makes the Phase-II tag validate, but the revoked member cannot produce
  // a fresh group signature.
  TestGroup group("g", default_config());
  Member& alice = group.admit(1);
  Member& bob = group.admit(2);
  Member& mallory = group.admit(3);

  // Capture mallory's credential *before* revocation (she keeps a copy).
  const gsig::MemberCredential stale_credential = mallory.credential();
  group.remove(3);

  // The insider leaks the current group key to revoked mallory.
  const Bytes leaked_key = alice.group_key();

  HandshakeOptions opts;  // traceable: Phase III on
  auto p0 = alice.handshake_party(0, 3, opts, to_bytes("atk"));
  auto p1 = bob.handshake_party(1, 3, opts, to_bytes("atk"));
  HandshakeParticipant p2(group.authority(), stale_credential, leaked_key, 2,
                          3, opts, to_bytes("atk-mallory"));
  HandshakeParticipant* parts[] = {p0.get(), p1.get(), &p2};
  auto outcomes = run_handshake(parts);

  // Phase II succeeded for mallory (she has the group key!)...
  // ...but honest members must NOT confirm her (Phase III caught it).
  EXPECT_TRUE(outcomes[0].partner[0]);
  EXPECT_TRUE(outcomes[0].partner[1]);
  EXPECT_FALSE(outcomes[0].partner[2]) << "revoked member accepted!";
  EXPECT_FALSE(outcomes[1].partner[2]) << "revoked member accepted!";

  // Ablation (documents the §3 argument): with Phase III disabled the
  // leaked CGKD key alone *does* fool the honest members — which is
  // exactly why the framework keeps both revocation layers.
  HandshakeOptions no_p3;
  no_p3.traceable = false;
  auto q0 = alice.handshake_party(0, 3, no_p3, to_bytes("atk2"));
  auto q1 = bob.handshake_party(1, 3, no_p3, to_bytes("atk2"));
  HandshakeParticipant q2(group.authority(), stale_credential, leaked_key, 2,
                          3, no_p3, to_bytes("atk2-mallory"));
  HandshakeParticipant* parts2[] = {q0.get(), q1.get(), &q2};
  auto outcomes2 = run_handshake(parts2);
  EXPECT_TRUE(outcomes2[0].partner[2])
      << "expected the ablated (Phase I+II only) protocol to be fooled";
}

TEST(Framework, DistinctGroupsHaveIndependentState) {
  TestGroup a("alpha", default_config());
  TestGroup b("beta", default_config());
  Member& ma = a.admit(1);
  Member& mb = b.admit(1);
  EXPECT_NE(ma.group_key(), mb.group_key());
  EXPECT_NE(a.authority().gsig().public_key_digest(),
            b.authority().gsig().public_key_digest());
}

TEST(Framework, TraceRecoversAllParticipants) {
  TestGroup group("g", default_config());
  Member& alice = group.admit(10);
  Member& bob = group.admit(20);
  Member& carol = group.admit(30);
  auto outcomes =
      handshake({&alice, &bob, &carol}, HandshakeOptions{}, "trace-run");
  ASSERT_TRUE(outcomes[0].full_success);

  auto traced = group.authority().trace(outcomes[0].transcript);
  std::sort(traced.begin(), traced.end());
  EXPECT_EQ(traced, (std::vector<MemberId>{10, 20, 30}));

  // Worst-case exhaustive search finds the same set.
  auto traced2 = group.authority().trace(outcomes[1].transcript, true);
  std::sort(traced2.begin(), traced2.end());
  EXPECT_EQ(traced2, (std::vector<MemberId>{10, 20, 30}));
}

TEST(Framework, TraceOfUntraceableHandshakeIsEmpty) {
  TestGroup group("g", default_config());
  Member& alice = group.admit(1);
  Member& bob = group.admit(2);
  HandshakeOptions opts;
  opts.traceable = false;
  auto outcomes = handshake({&alice, &bob}, opts, "no-trace");
  ASSERT_TRUE(outcomes[0].full_success);
  EXPECT_TRUE(group.authority().trace(outcomes[0].transcript).empty());
}

TEST(Framework, WrongAuthorityCannotTrace) {
  TestGroup a("alpha", default_config());
  TestGroup b("beta", default_config());
  Member& m1 = a.admit(1);
  Member& m2 = a.admit(2);
  auto outcomes = handshake({&m1, &m2}, HandshakeOptions{}, "cross-trace");
  ASSERT_TRUE(outcomes[0].full_success);
  // Group beta's GA cannot decrypt group alpha's tracing ciphertexts.
  EXPECT_TRUE(b.authority().trace(outcomes[0].transcript).empty());
}

TEST(Framework, SelfDistinctionRequiresKty) {
  GroupConfig cfg;
  cfg.gsig = GsigKind::kAcjt;
  TestGroup group("g", cfg);
  Member& alice = group.admit(1);
  (void)group.admit(2);
  HandshakeOptions opts;
  opts.self_distinction = true;
  EXPECT_THROW((void)alice.handshake_party(0, 2, opts, to_bytes("s")),
               ProtocolError);
}

TEST(Framework, HandshakeRejectsDegenerateShapes) {
  TestGroup group("g", default_config());
  Member& alice = group.admit(1);
  EXPECT_THROW((void)alice.handshake_party(0, 1, HandshakeOptions{},
                                           to_bytes("s")),
               ProtocolError);
  EXPECT_THROW((void)alice.handshake_party(5, 3, HandshakeOptions{},
                                           to_bytes("s")),
               ProtocolError);
}

}  // namespace
}  // namespace shs::core
