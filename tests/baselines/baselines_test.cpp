// Baseline-scheme tests: Balfanz [3] and CJT04 [14] correctness (same
// group accepts, cross group rejects symmetrically), impostor resistance,
// and the one-time-credential linkability drawback GCD removes.
#include <gtest/gtest.h>

#include "baselines/balfanz.h"
#include "baselines/cjt04.h"
#include "crypto/drbg.h"

namespace shs::baselines {
namespace {

using algebra::ParamLevel;

TEST(Balfanz, SameGroupHandshakeSucceeds) {
  BalfanzAuthority ga(ParamLevel::kTest, to_bytes("balfanz-seed"));
  crypto::HmacDrbg rng(to_bytes("balfanz-run"));
  auto alice = ga.issue(1);
  auto bob = ga.issue(1);
  auto [ra, rb] = balfanz_handshake(ga.group(), alice[0], bob[0], rng);
  EXPECT_TRUE(ra.accepted);
  EXPECT_TRUE(rb.accepted);
  EXPECT_EQ(ra.session_key, rb.session_key);
  EXPECT_EQ(ra.session_key.size(), 32u);
}

TEST(Balfanz, CrossGroupHandshakeFailsBothWays) {
  BalfanzAuthority fbi(ParamLevel::kTest, to_bytes("fbi"));
  BalfanzAuthority cia(ParamLevel::kTest, to_bytes("cia"));
  crypto::HmacDrbg rng(to_bytes("balfanz-cross"));
  auto alice = fbi.issue(1);
  auto bob = cia.issue(1);
  auto [ra, rb] = balfanz_handshake(fbi.group(), alice[0], bob[0], rng);
  EXPECT_FALSE(ra.accepted);
  EXPECT_FALSE(rb.accepted);
  EXPECT_TRUE(ra.session_key.empty());
}

TEST(Balfanz, ImpostorWithUnsignedPseudonymFails) {
  BalfanzAuthority ga(ParamLevel::kTest, to_bytes("balfanz-seed2"));
  crypto::HmacDrbg rng(to_bytes("balfanz-impostor"));
  auto alice = ga.issue(1);
  // Mallory makes up a pseudonym and uses a random point as "secret".
  BalfanzCredential mallory;
  mallory.pseudonym = to_bytes("mallory");
  mallory.secret = ga.group().mul(ga.group().generator(),
                                  ga.group().random_scalar(rng));
  auto [ra, rm] = balfanz_handshake(ga.group(), alice[0], mallory, rng);
  EXPECT_FALSE(ra.accepted);
}

TEST(Balfanz, ReusedPseudonymIsTriviallyLinkable) {
  // The drawback motivating GCD (§1, §10): credentials are one-time.
  // Reusing one exposes the link between two sessions — the pseudonym is
  // transmitted in the clear and repeats verbatim.
  BalfanzAuthority ga(ParamLevel::kTest, to_bytes("balfanz-seed3"));
  auto alice = ga.issue(2);
  EXPECT_NE(alice[0].pseudonym, alice[1].pseudonym);  // fresh per handshake
  // An observer comparing two transcripts that used alice[0] twice would
  // match on the identical pseudonym bytes; with distinct credentials
  // there is nothing to match.
  EXPECT_EQ(alice[0].pseudonym, alice[0].pseudonym);
}

TEST(Cjt04, SameGroupHandshakeSucceeds) {
  CjtAuthority ca(ParamLevel::kTest, to_bytes("cjt-seed"));
  crypto::HmacDrbg rng(to_bytes("cjt-run"));
  auto alice = ca.issue(1);
  auto bob = ca.issue(1);
  auto [ra, rb] = cjt_handshake(ca.group(), ca.public_key(), alice[0],
                                ca.public_key(), bob[0], rng);
  EXPECT_TRUE(ra.accepted);
  EXPECT_TRUE(rb.accepted);
  EXPECT_EQ(ra.session_key, rb.session_key);
}

TEST(Cjt04, CrossGroupHandshakeFailsBothWays) {
  CjtAuthority fbi(ParamLevel::kTest, to_bytes("cjt-fbi"));
  CjtAuthority cia(ParamLevel::kTest, to_bytes("cjt-cia"));
  crypto::HmacDrbg rng(to_bytes("cjt-cross"));
  auto alice = fbi.issue(1);
  auto bob = cia.issue(1);
  auto [ra, rb] = cjt_handshake(fbi.group(), fbi.public_key(), alice[0],
                                cia.public_key(), bob[0], rng);
  EXPECT_FALSE(ra.accepted);
  EXPECT_FALSE(rb.accepted);
}

TEST(Cjt04, DerivedKeyMatchesTrapdoor) {
  CjtAuthority ca(ParamLevel::kTest, to_bytes("cjt-seed2"));
  auto cred = ca.issue(1);
  const auto pk = CjtAuthority::derive_public_key(
      ca.group(), ca.public_key(), cred[0].pseudonym, cred[0].r);
  EXPECT_EQ(pk, ca.group().exp_g(cred[0].s));
}

TEST(Cjt04, ImpostorWithoutCertificateFails) {
  CjtAuthority ca(ParamLevel::kTest, to_bytes("cjt-seed3"));
  crypto::HmacDrbg rng(to_bytes("cjt-impostor"));
  auto alice = ca.issue(1);
  // Mallory invents (w, r) but has no s for the derived key.
  CjtCredential mallory;
  mallory.pseudonym = to_bytes("mallory");
  mallory.r = ca.group().random_element(rng);
  mallory.s = ca.group().random_exponent(rng);
  auto [ra, rm] = cjt_handshake(ca.group(), ca.public_key(), alice[0],
                                ca.public_key(), mallory, rng);
  EXPECT_FALSE(ra.accepted);
}

TEST(Cjt04, CredentialsAreOneTime) {
  CjtAuthority ca(ParamLevel::kTest, to_bytes("cjt-seed4"));
  auto creds = ca.issue(3);
  EXPECT_NE(creds[0].pseudonym, creds[1].pseudonym);
  EXPECT_NE(creds[1].pseudonym, creds[2].pseudonym);
  EXPECT_NE(creds[0].r, creds[1].r);
}

}  // namespace
}  // namespace shs::baselines
