// CCA2-flavoured tests for the tracing cryptosystem: mix-and-match of
// components across ciphertexts must be rejected (non-malleability is the
// property GCD.TraceUser's IND-CCA2 requirement is about), and the KEM
// consistency check must fire before any payload is touched.
#include <gtest/gtest.h>

#include "algebra/hybrid_pke.h"
#include "common/errors.h"
#include "crypto/drbg.h"

namespace shs::algebra {
namespace {

class Cca2Test : public ::testing::Test {
 protected:
  Cca2Test()
      : pke_(SchnorrGroup::standard(ParamLevel::kTest)),
        rng_(to_bytes("cca2")) {
    kp_ = pke_.keygen(rng_);
  }
  HybridPke pke_;
  crypto::HmacDrbg rng_;
  HybridPke::KeyPair kp_;
};

TEST_F(Cca2Test, ComponentMixAndMatchRejected) {
  const Bytes ct1 = pke_.encrypt(kp_.pk, to_bytes("message one"), rng_);
  const Bytes ct2 = pke_.encrypt(kp_.pk, to_bytes("message two"), rng_);
  const std::size_t es = pke_.group().element_size();
  // Swap each KEM component (u1, u2, e, v) from ct2 into ct1 in turn.
  for (int component = 0; component < 4; ++component) {
    Bytes frankenstein = ct1;
    std::copy(ct2.begin() + component * static_cast<long>(es),
              ct2.begin() + (component + 1) * static_cast<long>(es),
              frankenstein.begin() + component * static_cast<long>(es));
    EXPECT_THROW((void)pke_.decrypt(kp_.pk, kp_.sk, frankenstein),
                 VerifyError)
        << "component " << component;
  }
  // Swap the DEM payloads.
  Bytes dem_swap = ct1;
  std::copy(ct2.begin() + 4 * static_cast<long>(es), ct2.end(),
            dem_swap.begin() + 4 * static_cast<long>(es));
  EXPECT_THROW((void)pke_.decrypt(kp_.pk, kp_.sk, dem_swap), VerifyError);
}

TEST_F(Cca2Test, ReEncryptionOfPayloadUnderOtherKeyRejected) {
  HybridPke::KeyPair other = pke_.keygen(rng_);
  const Bytes ct = pke_.encrypt(other.pk, to_bytes("for someone else"), rng_);
  EXPECT_THROW((void)pke_.decrypt(kp_.pk, kp_.sk, ct), VerifyError);
}

TEST_F(Cca2Test, DecryptionIsDeterministicAndStable) {
  const Bytes pt = to_bytes("stable plaintext");
  const Bytes ct = pke_.encrypt(kp_.pk, pt, rng_);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pke_.decrypt(kp_.pk, kp_.sk, ct), pt);
  }
}

TEST_F(Cca2Test, GroupElementValidationOnDecode) {
  // Replace u1 with a non-residue encoding: must be rejected by the
  // subgroup membership check, not processed.
  const Bytes ct = pke_.encrypt(kp_.pk, to_bytes("m"), rng_);
  Bytes bad = ct;
  // p-1 is a quadratic non-residue for safe-prime p (Jacobi -1... it is
  // -1 which has Jacobi symbol (-1/p) = -1 when p = 3 mod 4); encode it.
  const auto& g = pke_.group();
  const Bytes nonres = (g.p() - num::BigInt(1)).to_bytes_padded(
      g.element_size());
  std::copy(nonres.begin(), nonres.end(), bad.begin());
  EXPECT_THROW((void)pke_.decrypt(kp_.pk, kp_.sk, bad), VerifyError);
}

}  // namespace
}  // namespace shs::algebra
