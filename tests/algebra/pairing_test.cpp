// Pairing-group tests: curve arithmetic laws, subgroup structure, F_p^2
// field axioms, and the bilinearity / non-degeneracy of the modified Tate
// pairing — the foundation of the Balfanz baseline.
#include <gtest/gtest.h>

#include "algebra/pairing.h"
#include "bigint/modmath.h"
#include "common/errors.h"
#include "crypto/drbg.h"

namespace shs::algebra {
namespace {

using num::BigInt;
using Point = PairingGroup::Point;

class PairingTest : public ::testing::Test {
 protected:
  PairingTest()
      : group_(PairingGroup::standard(ParamLevel::kTest)),
        rng_(to_bytes("pairing-test")) {}
  PairingGroup group_;
  crypto::HmacDrbg rng_;
};

TEST_F(PairingTest, GeneratorIsValidOrderQPoint) {
  const Point& g = group_.generator();
  EXPECT_FALSE(g.infinity);
  EXPECT_TRUE(group_.on_curve(g));
  EXPECT_TRUE(group_.mul(g, group_.q()).infinity);
  EXPECT_FALSE(group_.mul(g, BigInt(1)).infinity);
}

TEST_F(PairingTest, GroupLaws) {
  const Point& g = group_.generator();
  const BigInt a = group_.random_scalar(rng_);
  const BigInt b = group_.random_scalar(rng_);
  const Point pa = group_.mul(g, a);
  const Point pb = group_.mul(g, b);
  // Commutativity and compatibility with scalar arithmetic.
  EXPECT_EQ(group_.add(pa, pb), group_.add(pb, pa));
  EXPECT_EQ(group_.add(pa, pb), group_.mul(g, a + b));
  EXPECT_EQ(group_.mul(pa, b), group_.mul(pb, a));
  // Inverses.
  EXPECT_TRUE(group_.add(pa, group_.negate(pa)).infinity);
  EXPECT_EQ(group_.add(pa, Point{}), pa);  // identity
  // Doubling consistency.
  EXPECT_EQ(group_.add(pa, pa), group_.mul(pa, BigInt(2)));
}

TEST_F(PairingTest, HashToPointLandsInSubgroup) {
  for (const char* input : {"alice", "bob", "carol"}) {
    const Point p = group_.hash_to_point(to_bytes(input));
    EXPECT_TRUE(group_.on_curve(p));
    EXPECT_TRUE(group_.mul(p, group_.q()).infinity);
    EXPECT_FALSE(p.infinity);
  }
  EXPECT_EQ(group_.hash_to_point(to_bytes("x")),
            group_.hash_to_point(to_bytes("x")));
  EXPECT_NE(group_.hash_to_point(to_bytes("x")),
            group_.hash_to_point(to_bytes("y")));
}

TEST_F(PairingTest, PointCodecRoundtripAndValidation) {
  const Point p = group_.mul(group_.generator(), group_.random_scalar(rng_));
  EXPECT_EQ(group_.decode_point(group_.encode_point(p)), p);
  EXPECT_EQ(group_.decode_point(group_.encode_point(Point{})), Point{});
  // Off-curve point rejected.
  Point bad = p;
  bad.x = num::mod(bad.x + BigInt(1), group_.p());
  EXPECT_THROW((void)group_.decode_point(group_.encode_point(bad)),
               VerifyError);
}

TEST_F(PairingTest, Fp2FieldAxioms) {
  auto rand_fp2 = [&] {
    return Fp2{num::random_below(group_.p(), rng_),
               num::random_below(group_.p(), rng_)};
  };
  const Fp2 a = rand_fp2();
  const Fp2 b = rand_fp2();
  const Fp2 c = rand_fp2();
  EXPECT_EQ(group_.fp2_mul(a, b), group_.fp2_mul(b, a));
  EXPECT_EQ(group_.fp2_mul(group_.fp2_mul(a, b), c),
            group_.fp2_mul(a, group_.fp2_mul(b, c)));
  EXPECT_EQ(group_.fp2_mul(a, group_.fp2_inverse(a)), group_.fp2_one());
  EXPECT_EQ(group_.fp2_square(a), group_.fp2_mul(a, a));
  // Conjugation is multiplicative.
  EXPECT_EQ(group_.fp2_conjugate(group_.fp2_mul(a, b)),
            group_.fp2_mul(group_.fp2_conjugate(a), group_.fp2_conjugate(b)));
  // Exponent laws.
  const BigInt e1 = num::random_bits(64, rng_);
  const BigInt e2 = num::random_bits(64, rng_);
  EXPECT_EQ(group_.fp2_exp(a, e1 + e2),
            group_.fp2_mul(group_.fp2_exp(a, e1), group_.fp2_exp(a, e2)));
}

TEST_F(PairingTest, PairingIsBilinear) {
  const Point& g = group_.generator();
  const BigInt a = group_.random_scalar(rng_);
  const BigInt b = group_.random_scalar(rng_);
  const Fp2 base = group_.pairing(g, g);
  // e(aG, bG) = e(G, G)^{ab}
  EXPECT_EQ(group_.pairing(group_.mul(g, a), group_.mul(g, b)),
            group_.fp2_exp(base, num::mul_mod(a, b, group_.q())));
  // e(aG, G) = e(G, aG) (symmetric via the distortion map)
  EXPECT_EQ(group_.pairing(group_.mul(g, a), g),
            group_.pairing(g, group_.mul(g, a)));
}

TEST_F(PairingTest, PairingIsNonDegenerate) {
  const Point& g = group_.generator();
  const Fp2 e = group_.pairing(g, g);
  EXPECT_NE(e, group_.fp2_one());
  // Has order q: e^q = 1.
  EXPECT_EQ(group_.fp2_exp(e, group_.q()), group_.fp2_one());
}

TEST_F(PairingTest, PairingWithInfinityIsOne) {
  EXPECT_EQ(group_.pairing(Point{}, group_.generator()), group_.fp2_one());
  EXPECT_EQ(group_.pairing(group_.generator(), Point{}), group_.fp2_one());
}

TEST_F(PairingTest, PairingKeyAgreesAcrossSokIdentities) {
  // The Sakai-Ohgishi-Kasahara property the Balfanz scheme rests on:
  // s*H(a) paired with H(b) equals H(a) paired with s*H(b).
  const BigInt s = group_.random_scalar(rng_);
  const Point ha = group_.hash_to_point(to_bytes("id-a"));
  const Point hb = group_.hash_to_point(to_bytes("id-b"));
  EXPECT_EQ(group_.pairing_key(group_.mul(ha, s), hb),
            group_.pairing_key(ha, group_.mul(hb, s)));
  EXPECT_NE(group_.pairing_key(ha, hb),
            group_.pairing_key(group_.mul(ha, s), hb));
}

}  // namespace
}  // namespace shs::algebra
