// Algebra-layer tests: embedded parameter validity (re-verified with this
// library's own Miller-Rabin), Schnorr/QR group laws, hash-to-group
// distribution, ElGamal and the Cramer-Shoup hybrid PKE including its
// CCA-style tamper rejection.
#include <gtest/gtest.h>

#include "algebra/elgamal.h"
#include "algebra/hybrid_pke.h"
#include "algebra/params.h"
#include "algebra/qr_group.h"
#include "algebra/schnorr_group.h"
#include "bigint/modmath.h"
#include "bigint/prime.h"
#include "common/errors.h"
#include "crypto/drbg.h"

namespace shs::algebra {
namespace {

using num::BigInt;

class ParamsValid : public ::testing::TestWithParam<ParamLevel> {};

TEST_P(ParamsValid, RsaPrimesAreDistinctSafePrimes) {
  num::TestRng rng(1);
  const RsaSafePrimes sp = rsa_safe_primes(GetParam());
  EXPECT_NE(sp.p, sp.q);
  for (const BigInt& v : {sp.p, sp.q}) {
    EXPECT_TRUE(is_probable_prime(v, rng));
    EXPECT_TRUE(is_probable_prime((v - BigInt(1)) >> 1, rng));
  }
}

TEST_P(ParamsValid, SchnorrPrimeIsSafePrime) {
  num::TestRng rng(2);
  const BigInt p = schnorr_safe_prime(GetParam());
  EXPECT_TRUE(is_probable_prime(p, rng));
  EXPECT_TRUE(is_probable_prime((p - BigInt(1)) >> 1, rng));
}

INSTANTIATE_TEST_SUITE_P(Levels, ParamsValid,
                         ::testing::Values(ParamLevel::kTest,
                                           ParamLevel::kBench));

TEST(SchnorrGroup, GeneratorHasOrderQ) {
  const SchnorrGroup g = SchnorrGroup::standard(ParamLevel::kTest);
  EXPECT_EQ(g.exp_g(g.q()), BigInt(1));
  EXPECT_NE(g.exp_g(BigInt(2)), BigInt(1));
  EXPECT_TRUE(g.is_element(g.g()));
}

TEST(SchnorrGroup, GroupLaws) {
  crypto::HmacDrbg rng(to_bytes("schnorr-laws"));
  const SchnorrGroup g = SchnorrGroup::standard(ParamLevel::kTest);
  const BigInt a = g.random_element(rng);
  const BigInt b = g.random_element(rng);
  const BigInt e1 = g.random_exponent(rng);
  const BigInt e2 = g.random_exponent(rng);
  EXPECT_EQ(g.mul(a, b), g.mul(b, a));
  EXPECT_EQ(g.mul(a, g.inverse(a)), BigInt(1));
  EXPECT_EQ(g.exp(a, e1 + e2), g.mul(g.exp(a, e1), g.exp(a, e2)));
  EXPECT_EQ(g.exp(g.exp(a, e1), e2), g.exp(a, num::mul_mod(e1, e2, g.q())));
  // Negative exponent = inverse power.
  EXPECT_EQ(g.exp(a, -e1), g.inverse(g.exp(a, e1)));
}

TEST(SchnorrGroup, RandomElementsAreMembers) {
  crypto::HmacDrbg rng(to_bytes("schnorr-members"));
  const SchnorrGroup g = SchnorrGroup::standard(ParamLevel::kTest);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(g.is_element(g.random_element(rng)));
  }
  EXPECT_FALSE(g.is_element(BigInt(0)));
  EXPECT_FALSE(g.is_element(BigInt(1)));
  EXPECT_FALSE(g.is_element(g.p()));
}

TEST(SchnorrGroup, HashToGroupIsInGroupAndDeterministic) {
  const SchnorrGroup g = SchnorrGroup::standard(ParamLevel::kTest);
  const BigInt h1 = g.hash_to_group(to_bytes("hello"));
  const BigInt h2 = g.hash_to_group(to_bytes("hello"));
  const BigInt h3 = g.hash_to_group(to_bytes("world"));
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_TRUE(g.is_element(h1));
  EXPECT_TRUE(g.is_element(h3));
  // Exponent hashing stays in range.
  const BigInt e = g.hash_to_exponent(to_bytes("exp"));
  EXPECT_GE(e, BigInt(0));
  EXPECT_LT(e, g.q());
}

TEST(SchnorrGroup, EncodeDecodeRoundtrip) {
  crypto::HmacDrbg rng(to_bytes("schnorr-codec"));
  const SchnorrGroup g = SchnorrGroup::standard(ParamLevel::kTest);
  const BigInt a = g.random_element(rng);
  EXPECT_EQ(g.decode(g.encode(a)), a);
  EXPECT_THROW((void)g.decode(Bytes(3, 0)), VerifyError);
  // Encoding of a non-member must be rejected on decode.
  Bytes enc = BigInt(1).to_bytes_padded(g.element_size());
  EXPECT_THROW((void)g.decode(enc), VerifyError);
}

TEST(SchnorrGroup, RuntimeGenerationWorks) {
  num::TestRng rng(3);
  const SchnorrGroup g = SchnorrGroup::generate(96, rng);
  EXPECT_EQ(g.p().bit_length(), 96u);
  EXPECT_EQ(g.exp_g(g.q()), BigInt(1));
}

TEST(QrGroup, OrderAndStructure) {
  auto [g, secret] = QrGroup::standard(ParamLevel::kTest);
  EXPECT_EQ(g.n(), secret.modulus());
  crypto::HmacDrbg rng(to_bytes("qr-structure"));
  // Any QR raised to the group order is 1.
  const BigInt a = g.random_qr(rng);
  EXPECT_EQ(g.exp(a, secret.group_order()), BigInt(1));
  // And (overwhelmingly) not 1 at the proper divisors p', q'.
  const BigInt pp = (secret.p - BigInt(1)) >> 1;
  const BigInt qq = (secret.q - BigInt(1)) >> 1;
  EXPECT_NE(g.exp(a, pp), BigInt(1));
  EXPECT_NE(g.exp(a, qq), BigInt(1));
}

TEST(QrGroup, GroupLaws) {
  auto [g, secret] = QrGroup::standard(ParamLevel::kTest);
  crypto::HmacDrbg rng(to_bytes("qr-laws"));
  const BigInt a = g.random_qr(rng);
  const BigInt b = g.random_qr(rng);
  const BigInt e1 = num::random_bits(128, rng);
  const BigInt e2 = num::random_bits(128, rng);
  EXPECT_EQ(g.mul(a, b), g.mul(b, a));
  EXPECT_EQ(g.mul(a, g.inverse(a)), BigInt(1));
  EXPECT_EQ(g.exp(a, e1 + e2), g.mul(g.exp(a, e1), g.exp(a, e2)));
  EXPECT_EQ(g.exp(g.exp(a, e1), e2), g.exp(a, e1 * e2));
}

TEST(QrGroup, HashToQrIsQuadraticResidue) {
  auto [g, secret] = QrGroup::standard(ParamLevel::kTest);
  const BigInt h = g.hash_to_qr(to_bytes("transcript"));
  EXPECT_TRUE(g.is_plausible_element(h));
  // True QR test using the trapdoor: h^{|QR(n)|} == 1 and h is a square
  // mod both prime factors (Euler criterion).
  EXPECT_EQ(num::mod_exp(h, (secret.p - BigInt(1)) >> 1, secret.p), BigInt(1));
  EXPECT_EQ(num::mod_exp(h, (secret.q - BigInt(1)) >> 1, secret.q), BigInt(1));
  EXPECT_EQ(g.hash_to_qr(to_bytes("transcript")), h);
  EXPECT_NE(g.hash_to_qr(to_bytes("other")), h);
}

TEST(ElGamal, EncryptDecryptRoundtrip) {
  crypto::HmacDrbg rng(to_bytes("elgamal"));
  const ElGamal scheme(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = scheme.keygen(rng);
  for (int i = 0; i < 5; ++i) {
    const BigInt m = scheme.group().random_element(rng);
    const auto ct = scheme.encrypt(kp.pk, m, rng);
    EXPECT_EQ(scheme.decrypt(kp.sk, ct), m);
  }
}

TEST(ElGamal, WrongKeyGivesGarbage) {
  crypto::HmacDrbg rng(to_bytes("elgamal-wrong"));
  const ElGamal scheme(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp1 = scheme.keygen(rng);
  const auto kp2 = scheme.keygen(rng);
  const BigInt m = scheme.group().random_element(rng);
  const auto ct = scheme.encrypt(kp1.pk, m, rng);
  EXPECT_NE(scheme.decrypt(kp2.sk, ct), m);
}

TEST(ElGamal, IsHomomorphic) {
  crypto::HmacDrbg rng(to_bytes("elgamal-hom"));
  const ElGamal scheme(SchnorrGroup::standard(ParamLevel::kTest));
  const auto& g = scheme.group();
  const auto kp = scheme.keygen(rng);
  const BigInt m1 = g.random_element(rng);
  const BigInt m2 = g.random_element(rng);
  const auto c1 = scheme.encrypt(kp.pk, m1, rng);
  const auto c2 = scheme.encrypt(kp.pk, m2, rng);
  const ElGamalCiphertext prod{g.mul(c1.c1, c2.c1), g.mul(c1.c2, c2.c2)};
  EXPECT_EQ(scheme.decrypt(kp.sk, prod), g.mul(m1, m2));
}

TEST(HybridPke, EncryptDecryptRoundtrip) {
  crypto::HmacDrbg rng(to_bytes("hybrid"));
  const HybridPke pke(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = pke.keygen(rng);
  for (std::size_t len : {0u, 1u, 32u, 300u}) {
    const Bytes pt = rng.bytes(len);
    const Bytes ct = pke.encrypt(kp.pk, pt, rng);
    EXPECT_EQ(ct.size(), pke.ciphertext_size(len));
    EXPECT_EQ(pke.decrypt(kp.pk, kp.sk, ct), pt) << len;
  }
}

TEST(HybridPke, TamperedCiphertextRejected) {
  crypto::HmacDrbg rng(to_bytes("hybrid-tamper"));
  const HybridPke pke(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = pke.keygen(rng);
  const Bytes ct = pke.encrypt(kp.pk, to_bytes("trace me"), rng);
  // Flip one byte in each component region (u1, u2, e, v, AEAD body).
  const std::size_t es = pke.group().element_size();
  for (std::size_t pos : {std::size_t{es - 1}, 2 * es - 1, 3 * es - 1,
                          4 * es - 1, ct.size() - 1}) {
    Bytes bad = ct;
    bad[pos] ^= 0x01;
    EXPECT_THROW((void)pke.decrypt(kp.pk, kp.sk, bad), VerifyError) << pos;
  }
  EXPECT_THROW((void)pke.decrypt(kp.pk, kp.sk, Bytes(10, 0)), VerifyError);
}

TEST(HybridPke, RandomCiphertextShapeAndRejection) {
  crypto::HmacDrbg rng(to_bytes("hybrid-random"));
  const HybridPke pke(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = pke.keygen(rng);
  const Bytes fake = pke.random_ciphertext(32, rng);
  EXPECT_EQ(fake.size(), pke.ciphertext_size(32));
  // The Case-2 simulation depends on fake ciphertexts failing to decrypt.
  EXPECT_THROW((void)pke.decrypt(kp.pk, kp.sk, fake), VerifyError);
}

TEST(HybridPke, CiphertextsAreProbabilistic) {
  crypto::HmacDrbg rng(to_bytes("hybrid-prob"));
  const HybridPke pke(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = pke.keygen(rng);
  const Bytes pt = to_bytes("same message");
  EXPECT_NE(pke.encrypt(kp.pk, pt, rng), pke.encrypt(kp.pk, pt, rng));
}

}  // namespace
}  // namespace shs::algebra
