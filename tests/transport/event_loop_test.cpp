// EventLoop and Connection mechanics, pinned per backend (epoll and
// poll): readiness dispatch and interest changes, ManualClock-driven
// timers with cancellation, cross-thread post() waking a sleeping loop,
// frame round-trips over a socketpair, and the backpressure policy —
// write-kill watermark, FrameBuffer overflow and graceful drain.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "service/clock.h"
#include "service/frame.h"
#include "service/metrics.h"
#include "transport/connection.h"
#include "transport/event_loop.h"
#include "transport/socket.h"

namespace shs::transport {
namespace {

using namespace std::chrono_literals;

class EventLoopBackends : public ::testing::TestWithParam<LoopBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackends,
                         ::testing::Values(LoopBackend::kEpoll,
                                           LoopBackend::kPoll),
                         [](const auto& info) {
                           return info.param == LoopBackend::kEpoll ? "epoll"
                                                                    : "poll";
                         });

TEST(EventLoop, AutoPrefersEpollOnLinux) {
  EventLoop loop(LoopBackend::kAuto);
#ifdef __linux__
  EXPECT_TRUE(loop.using_epoll());
#else
  EXPECT_FALSE(loop.using_epoll());
#endif
  EXPECT_FALSE(EventLoop(LoopBackend::kPoll).using_epoll());
}

TEST_P(EventLoopBackends, DispatchesReadinessAndHonorsInterest) {
  EventLoop loop(GetParam());
  const std::size_t baseline = loop.fd_count();  // the internal wakeup pipe
  auto [a, b] = stream_socketpair();
  set_nonblocking(a.get());

  int reads = 0;
  loop.add_fd(a.get(), kLoopRead, [&](std::uint32_t events) {
    EXPECT_TRUE(events & kLoopRead);
    ++reads;
    std::uint8_t buf[64];
    while (::read(a.get(), buf, sizeof(buf)) > 0) {
    }
  });
  EXPECT_EQ(loop.run_once(0ms), 0u);  // nothing ready

  ASSERT_EQ(::write(b.get(), "x", 1), 1);
  EXPECT_GE(loop.run_once(100ms), 1u);
  EXPECT_EQ(reads, 1);

  // With read interest dropped the same byte goes unnoticed.
  loop.set_interest(a.get(), 0);
  ASSERT_EQ(::write(b.get(), "y", 1), 1);
  EXPECT_EQ(loop.run_once(10ms), 0u);
  EXPECT_EQ(reads, 1);

  loop.set_interest(a.get(), kLoopRead);
  EXPECT_GE(loop.run_once(100ms), 1u);
  EXPECT_EQ(reads, 2);

  loop.remove_fd(a.get());
  EXPECT_EQ(loop.fd_count(), baseline);
  ASSERT_EQ(::write(b.get(), "z", 1), 1);
  EXPECT_EQ(loop.run_once(10ms), 0u);
}

TEST_P(EventLoopBackends, PeerCloseIsDeliveredThroughTheReadPath) {
  EventLoop loop(GetParam());
  auto [a, b] = stream_socketpair();
  set_nonblocking(a.get());

  std::uint32_t seen = 0;
  loop.add_fd(a.get(), kLoopRead,
              [&](std::uint32_t events) { seen |= events; });
  b.reset();  // peer hangs up
  EXPECT_GE(loop.run_once(100ms), 1u);
  EXPECT_TRUE(seen & kLoopRead) << "EOF must surface through the read path";
}

TEST_P(EventLoopBackends, TimersFireInManualClockOrder) {
  service::ManualClock clock;
  EventLoop loop(GetParam(), &clock);

  std::vector<int> fired;
  loop.add_timer(100ms, [&] { fired.push_back(1); });
  const auto second = loop.add_timer(200ms, [&] { fired.push_back(2); });
  loop.add_timer(300ms, [&] { fired.push_back(3); });

  EXPECT_EQ(loop.run_once(0ms), 0u);  // virtual time stands still
  EXPECT_TRUE(fired.empty());

  clock.advance(150ms);
  EXPECT_EQ(loop.run_once(0ms), 1u);
  EXPECT_EQ(fired, std::vector<int>{1});

  loop.cancel_timer(second);
  clock.advance(1000ms);
  EXPECT_EQ(loop.run_once(0ms), 1u);  // only the third: second is cancelled
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST_P(EventLoopBackends, PostFromAnotherThreadWakesASleepingLoop) {
  EventLoop loop(GetParam());
  std::atomic<bool> ran{false};

  std::thread loop_thread([&] { loop.run(10s); });
  // With a 10s tick, a prompt return proves post() interrupted the sleep.
  const auto start = std::chrono::steady_clock::now();
  loop.post([&] { ran.store(true); });
  while (!ran.load() && std::chrono::steady_clock::now() - start < 5s) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(ran.load());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
  loop.stop();
  loop_thread.join();
}

TEST(EventLoop, FdNumberReuseWithinOneDispatchBatchIsNotMisdelivered) {
  // Events are resolved by raw fd number, so a callback that removes and
  // closes fd N mid-batch lets a later registration reclaim N while the
  // batch still holds the old socket's queued event. That stale event must
  // not reach the new entry. Forced deterministically with the poll
  // backend, which collects every ready fd before dispatching any.
  EventLoop loop(LoopBackend::kPoll);
  auto [a1, a2] = stream_socketpair();
  auto [b1, b2] = stream_socketpair();
  ASSERT_EQ(::write(a2.get(), "x", 1), 1);  // both registered fds are
  ASSERT_EQ(::write(b2.get(), "y", 1), 1);  // ready before the pass

  Fd reused;
  int winner = -1;         // whichever callback the batch ran first
  int victim = -1;         // the other fd: removed, closed, number reused
  int survivor_peer = -1;  // write end that can still reach `reused`
  int recorder_events = 0;

  auto arm = [&](Fd* self, Fd* other, Fd* self_peer) {
    loop.add_fd(self->get(), kLoopRead,
                [&, self, other, self_peer](std::uint32_t) {
                  char c = 0;
                  (void)!::read(self->get(), &c, 1);
                  if (winner != -1) return;  // the other callback won
                  winner = self->get();
                  survivor_peer = self_peer->get();
                  victim = other->get();
                  loop.remove_fd(victim);
                  other->reset();  // frees the number...
                  reused = Fd(::dup(self->get()));  // ...dup reclaims it
                  loop.add_fd(reused.get(), kLoopRead,
                              [&](std::uint32_t) { ++recorder_events; });
                });
  };
  arm(&a1, &b1, &a2);
  arm(&b1, &a1, &b2);

  EXPECT_GE(loop.run_once(100ms), 1u);
  ASSERT_NE(winner, -1);
  if (reused.get() != victim) {
    GTEST_SKIP() << "kernel did not hand back the freed fd number";
  }
  EXPECT_EQ(recorder_events, 0)
      << "stale event for the closed socket reached the reused fd";

  // A later pass delivers to the mid-batch registration normally (`reused`
  // dups the winner's socket, so one byte readies both).
  ASSERT_EQ(::write(survivor_peer, "z", 1), 1);
  EXPECT_GE(loop.run_once(100ms), 1u);
  EXPECT_GE(recorder_events, 1);
}

// ---------------------------------------------------------------------------
// Connection over a socketpair, loop driven inline on the test thread.

struct ConnProbe {
  std::vector<service::Frame> frames;
  std::string close_reason;
  bool closed = false;
  bool backpressure = false;

  Connection::Callbacks callbacks() {
    Connection::Callbacks cb;
    cb.on_frame = [this](Connection&, service::Frame frame) {
      frames.push_back(std::move(frame));
    };
    cb.on_closed = [this](Connection&, const std::string& reason, bool bp) {
      closed = true;
      close_reason = reason;
      backpressure = bp;
    };
    return cb;
  }
};

service::Frame data_frame(std::uint64_t sid, std::uint32_t round,
                          std::uint32_t position, std::size_t payload_size) {
  service::Frame frame;
  frame.session_id = sid;
  frame.round = round;
  frame.position = position;
  frame.payload.assign(payload_size, 0xab);
  return frame;
}

void pump_loop(EventLoop& loop, int spins = 50) {
  for (int i = 0; i < spins; ++i) (void)loop.run_once(1ms);
}

TEST_P(EventLoopBackends, ConnectionReassemblesFramesAndEchoesWrites) {
  EventLoop loop(GetParam());
  auto [a, b] = stream_socketpair();
  ConnProbe probe;
  service::ServiceMetrics metrics;
  auto conn = std::make_shared<Connection>(loop, std::move(a), 1,
                                           ConnectionLimits{},
                                           probe.callbacks(), &metrics);
  conn->register_with_loop();

  // Two frames written in one burst, split across arbitrary read chunks.
  const service::Frame f1 = data_frame(7, 0, 1, 100);
  const service::Frame f2 = data_frame(7, 0, 2, 3000);
  Bytes wire = service::encode_frame(f1);
  append(wire, service::encode_frame(f2));
  ASSERT_EQ(::write(b.get(), wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  pump_loop(loop);
  ASSERT_EQ(probe.frames.size(), 2u);
  EXPECT_EQ(probe.frames[0], f1);
  EXPECT_EQ(probe.frames[1], f2);
  EXPECT_EQ(metrics.tcp_bytes_in.load(), wire.size());

  // send() queues on any thread and the loop flushes to the peer.
  conn->send(service::encode_frame(f1));
  pump_loop(loop);
  Bytes got(service::encode_frame(f1).size());
  ASSERT_EQ(::read(b.get(), got.data(), got.size()),
            static_cast<ssize_t>(got.size()));
  EXPECT_EQ(got, service::encode_frame(f1));
  EXPECT_EQ(metrics.tcp_bytes_out.load(), got.size());
  EXPECT_GT(metrics.write_queue_hwm.load(), 0u);

  b.reset();  // peer disconnect closes the connection via the read path
  pump_loop(loop);
  EXPECT_TRUE(probe.closed);
  EXPECT_FALSE(probe.backpressure);
  EXPECT_EQ(metrics.connections_closed.load(), 1u);
}

TEST_P(EventLoopBackends, WriteKillWatermarkDropsTheConnection) {
  EventLoop loop(GetParam());
  auto [a, b] = stream_socketpair();
  ConnProbe probe;
  service::ServiceMetrics metrics;
  ConnectionLimits limits;
  limits.write_kill = 16 * 1024;
  auto conn = std::make_shared<Connection>(loop, std::move(a), 1, limits,
                                           probe.callbacks(), &metrics);
  conn->register_with_loop();

  // The peer never reads; one oversized burst crosses the kill watermark.
  conn->send(service::encode_frame(data_frame(9, 0, 0, 64 * 1024)));
  pump_loop(loop);
  EXPECT_TRUE(probe.closed);
  EXPECT_TRUE(probe.backpressure);
  EXPECT_EQ(metrics.connections_killed_backpressure.load(), 1u);
  EXPECT_TRUE(conn->closed());
  conn->send(service::encode_frame(data_frame(9, 0, 0, 8)));  // harmless no-op
}

TEST_P(EventLoopBackends, FrameBufferCapKillsAByteDripper) {
  EventLoop loop(GetParam());
  auto [a, b] = stream_socketpair();
  ConnProbe probe;
  ConnectionLimits limits;
  limits.max_unframed = 1024;  // far below the frame about to arrive
  auto conn = std::make_shared<Connection>(loop, std::move(a), 1, limits,
                                           probe.callbacks(), nullptr);
  conn->register_with_loop();

  // A legal frame header promising 512 KiB: bytes buffer without ever
  // completing a frame, so the cap — not the codec — must fire.
  const Bytes wire = service::encode_frame(data_frame(3, 0, 0, 512 * 1024));
  std::size_t sent = 0;
  while (sent < wire.size() && !probe.closed) {
    const std::size_t take = std::min<std::size_t>(2048, wire.size() - sent);
    if (::write(b.get(), wire.data() + sent, take) <= 0) break;
    sent += take;
    pump_loop(loop, 5);
  }
  EXPECT_TRUE(probe.closed);
  EXPECT_NE(probe.close_reason.find("FrameBuffer"), std::string::npos)
      << probe.close_reason;
}

TEST_P(EventLoopBackends, GracefulShutdownFlushesThenCloses) {
  EventLoop loop(GetParam());
  auto [a, b] = stream_socketpair();
  ConnProbe probe;
  auto conn = std::make_shared<Connection>(loop, std::move(a), 1,
                                           ConnectionLimits{},
                                           probe.callbacks(), nullptr);
  conn->register_with_loop();

  const Bytes wire = service::encode_frame(data_frame(5, 1, 0, 2000));
  conn->send(wire);
  loop.post([&] { conn->shutdown_when_drained(); });
  pump_loop(loop);

  Bytes got(wire.size());
  ASSERT_EQ(::read(b.get(), got.data(), got.size()),
            static_cast<ssize_t>(got.size()));
  EXPECT_EQ(got, wire);  // queued bytes reached the peer before the close
  EXPECT_TRUE(probe.closed);
  EXPECT_EQ(probe.close_reason, "graceful shutdown");
  std::uint8_t extra = 0;
  EXPECT_EQ(::read(b.get(), &extra, 1), 0) << "expected EOF after drain";
}

}  // namespace
}  // namespace shs::transport
