// Abrupt disconnect mid-phase: a client that vanishes after its session
// started leaves the session stalled, other clients' sessions finish
// untouched, and the transport's expiry timer — driven by the same
// ManualClock as the service deadline — reaps the dead session with
// synthetic kTimeout outcomes. Nothing about the death reaches the
// survivor (silent failure end to end).
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "fixture.h"
#include "service/clock.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

using namespace std::chrono_literals;
using testing::expect_outcomes_equal;
using testing::group_factory;
using testing::make_request;
using testing::serial_twin;

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 3000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

TEST(Disconnect, MidPhaseDeathIsReapedAndSurvivorsAreUntouched) {
  service::ManualClock clock;
  ServerOptions so;
  so.auto_close_sessions = false;
  so.expire_interval = 500ms;  // virtual cadence
  service::ServiceOptions svc;
  svc.clock = &clock;
  svc.session_deadline = 30000ms;
  TransportServer server(so, svc, group_factory());
  server.start();

  ClientOptions co;
  co.port = server.port();

  // The victim opens a session, sees round 0 arrive — proof the session
  // is mid-phase — and then drops off the network without a goodbye.
  Client victim(co);
  victim.connect();
  const OpenRequest victim_request = make_request(2, false, "tcp-victim");
  const std::uint64_t victim_sid = victim.open(victim_request);
  while (true) {
    auto frame = victim.recv_frame();
    ASSERT_TRUE(frame.has_value());
    if (!is_control(*frame)) break;  // first crypto frame observed
  }
  victim.close();

  // The server notices the dead socket and forgets the route...
  ASSERT_TRUE(eventually([&] { return server.connection_count() == 0; }));
  // ...but the session itself is merely stalled, not gone.
  EXPECT_EQ(server.service().state(victim_sid),
            service::SessionState::kCollecting);

  // A survivor connecting afterwards is completely unaffected.
  Client survivor(co);
  survivor.connect();
  const OpenRequest survivor_request = make_request(4, true, "tcp-survivor");
  const std::uint64_t survivor_sid = survivor.open(survivor_request);
  const auto& summaries = survivor.run();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries.front().state, service::SessionState::kDone);
  expect_outcomes_equal(server.service().outcomes(survivor_sid),
                        serial_twin(survivor_request));

  // No virtual time has passed, so the victim's session is still held.
  EXPECT_EQ(server.service().active_sessions(), 1u);

  // Cross the deadline: the loop's expiry timer fires on its next tick
  // and expire_stalled() reaps the orphan with synthetic timeouts.
  clock.advance(31000ms);
  ASSERT_TRUE(eventually([&] {
    return server.service().state(victim_sid) ==
           service::SessionState::kExpired;
  }));
  EXPECT_EQ(server.service().active_sessions(), 0u);
  const auto outcomes = server.service().outcomes(victim_sid);
  ASSERT_EQ(outcomes.size(), victim_request.m);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.completed);
    for (const auto reason : outcome.reason) {
      EXPECT_EQ(reason, core::FailureReason::kTimeout);
    }
  }
  EXPECT_EQ(server.sessions_completed(), 2u);  // one done, one expired
  server.shutdown();
}

TEST(Disconnect, DeadSessionEgressIsCountedNotCrashed) {
  // With auto-close off and a hand-fed service, drop the connection and
  // then force the stalled session to make progress server-side: the
  // frames it emits have nowhere to go and must land in egress_dropped.
  ServerOptions so;
  so.auto_close_sessions = false;
  TransportServer server(so, {}, group_factory());
  server.start();

  ClientOptions co;
  co.port = server.port();
  Client client(co);
  client.connect();
  const OpenRequest request = make_request(2, false, "tcp-orphan");
  const std::uint64_t sid = client.open(request);

  // Collect round 0 without echoing it, then vanish.
  std::vector<service::Frame> held;
  while (held.size() < request.m) {
    auto frame = client.recv_frame();
    ASSERT_TRUE(frame.has_value());
    if (!is_control(*frame)) held.push_back(std::move(*frame));
  }
  client.close();
  ASSERT_TRUE(eventually([&] { return server.connection_count() == 0; }));

  // Feed the held round back in directly: the session advances and emits
  // round 1 — which is routeless now.
  const std::uint64_t dropped_before = server.egress_dropped();
  for (const auto& frame : held) {
    server.service().handle_frame(frame);
  }
  server.service().pump();
  EXPECT_GT(server.egress_dropped(), dropped_before);
  EXPECT_EQ(server.service().state(sid), service::SessionState::kCollecting);
  server.shutdown();
}

}  // namespace
}  // namespace shs::transport
