// Shard construction and accept-dealing properties: num_shards is
// validated at construction (0 rejected, egress stays transport-owned),
// the default num_shards = 1 server is byte-identical to the pre-shard
// single-reactor server (dense sids, equal outcomes, metrics exports
// that are the service's own exports verbatim), accepted fds are dealt
// round-robin with bounded imbalance and every connection lives on
// exactly one shard, and connection churn never confuses the dealing or
// subsequent handshakes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fixture.h"
#include "shard_fixture.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

using testing::expect_outcomes_equal;
using testing::group_factory;
using testing::make_request;
using testing::serial_twin;
using testing::shard_eventually;

ClientOptions client_for(const TransportServer& server) {
  ClientOptions options;
  options.port = server.port();
  return options;
}

TEST(ShardAccept, ZeroShardsIsRejectedAtConstruction) {
  ServerOptions so;
  so.num_shards = 0;
  EXPECT_THROW(TransportServer(so, {}, group_factory()), ProtocolError);
}

TEST(ShardAccept, EgressStaysOwnedByTheTransport) {
  struct NullSink final : service::FrameSink {
    void on_frame(const service::Frame&) override {}
  } sink;

  service::ServiceOptions svc;
  svc.egress = &sink;
  EXPECT_THROW(TransportServer({}, svc, group_factory()), ProtocolError);

  ServerOptions so;
  so.num_shards = 2;
  so.per_shard_options = [&sink](std::size_t, service::ServiceOptions& s) {
    s.egress = &sink;
  };
  EXPECT_THROW(TransportServer(so, {}, group_factory()), ProtocolError);
}

// The equality regression the sharding refactor is pinned by: with the
// default num_shards = 1 nothing may differ from the pre-shard server —
// session ids count 1, 2, 3, ... densely, outcomes equal the serial
// driver, and the server's merged metrics exports are the single
// service's own exports byte-for-byte.
TEST(ShardAccept, SingleShardIsByteIdenticalToTheUnshardedServer) {
  ServerOptions so;
  so.auto_close_sessions = false;
  TransportServer server(so, {}, group_factory());
  server.start();
  ASSERT_EQ(server.num_shards(), 1u);

  std::uint64_t expected_sid = 1;
  for (const std::uint32_t m : {2u, 4u}) {
    for (const bool scheme2 : {false, true}) {
      SCOPED_TRACE("m=" + std::to_string(m) +
                   (scheme2 ? " scheme2" : " scheme1"));
      const OpenRequest request = make_request(
          m, scheme2,
          "shard-n1-" + std::to_string(m) + (scheme2 ? "-s2" : "-s1"));
      Client client(client_for(server));
      client.connect();
      const std::uint64_t sid = client.open(request);
      EXPECT_EQ(sid, expected_sid++);  // dense, stride 1
      EXPECT_EQ(server.home_shard_of(sid), 0u);
      client.run();
      expect_outcomes_equal(server.outcomes(sid), serial_twin(request));
    }
  }

  // Export surfaces delegate — byte equality, not merely same numbers.
  EXPECT_EQ(server.metrics_json(), server.service().metrics_json());
  EXPECT_EQ(server.metrics_prometheus(), server.service().metrics_prometheus());
  EXPECT_EQ(server.service().metrics().frames_handoff_in.load(), 0u);
  EXPECT_EQ(server.service().metrics().frames_handoff_out.load(), 0u);
  server.shutdown();
}

TEST(ShardAccept, AcceptDealingIsRoundRobinWithBoundedImbalance) {
  constexpr std::size_t kShards = 4;
  ServerOptions so;
  so.num_shards = kShards;
  TransportServer server(so, {}, group_factory());
  server.start();

  // Three bursts of deliberately non-multiple-of-N sizes.
  std::size_t total = 0;
  for (const std::size_t burst : {5u, 7u, 1u}) {
    std::vector<Client> clients;
    clients.reserve(burst);
    for (std::size_t c = 0; c < burst; ++c) {
      clients.emplace_back(client_for(server));
      clients.back().connect();
    }
    total += burst;
    // Earlier bursts' clients are gone: only this burst is live.
    ASSERT_TRUE(shard_eventually(
        [&] { return server.connection_count() == burst; }))
        << "burst of " << burst << " connections never fully installed";

    // Every live connection lives on exactly one shard...
    std::size_t per_shard_sum = 0;
    for (std::size_t i = 0; i < kShards; ++i) {
      per_shard_sum += server.connection_count(i);
    }
    EXPECT_EQ(per_shard_sum, burst);

    // ...and the all-time dealing is round-robin: max - min <= 1, and
    // (since accepts are sequential on one listener) exactly
    // ceil/floor(total / N) in index order.
    std::uint64_t installed_sum = 0;
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (std::size_t i = 0; i < kShards; ++i) {
      const std::uint64_t n = server.installed_on(i);
      EXPECT_EQ(n, total / kShards + (i < total % kShards ? 1 : 0))
          << "shard " << i;
      installed_sum += n;
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    EXPECT_EQ(installed_sum, total);
    EXPECT_LE(hi - lo, 1u);

    // Churn: this burst's clients all vanish before the next burst. The
    // live count drops; the dealt count must not.
    for (Client& client : clients) client.close();
    ASSERT_TRUE(shard_eventually(
        [&] { return server.connection_count() == 0; }));
  }

  // Fresh connections after all that churn still handshake fine on
  // whichever shard the dealing lands them.
  for (int c = 0; c < 3; ++c) {
    Client client(client_for(server));
    client.connect();
    const OpenRequest request =
        make_request(2, false, "shard-churn-" + std::to_string(c));
    client.open(request);
    const auto& summaries = client.run();
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries.front().state, service::SessionState::kDone);
  }
  server.shutdown();
}

// Session ids carry their home shard: shard i of N stripes ids
// congruent to i+1 (mod N), so with connection-local homes (stripe off)
// a session's sid pins it to the shard that accepted its connection.
TEST(ShardAccept, StripedSidsEncodeTheHomeShard) {
  constexpr std::size_t kShards = 4;
  ServerOptions so;
  so.num_shards = kShards;
  so.auto_close_sessions = false;
  TransportServer server(so, {}, group_factory());
  server.start();

  std::vector<Client> clients;
  std::vector<std::uint64_t> sids;
  std::vector<OpenRequest> requests;
  for (std::size_t c = 0; c < 2 * kShards; ++c) {
    clients.emplace_back(client_for(server));
    clients.back().connect();
    requests.push_back(
        make_request(2, false, "shard-sid-" + std::to_string(c)));
    sids.push_back(clients.back().open(requests.back()));
    // Connections are dealt round-robin, so client c landed on shard
    // c % N, and with stripe_sessions off the session homes there too.
    EXPECT_EQ(server.home_shard_of(sids.back()), c % kShards)
        << "sid " << sids.back();
    EXPECT_EQ((sids.back() - 1) % kShards, c % kShards);
  }

  for (std::size_t c = 0; c < clients.size(); ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    clients[c].run();
    // outcomes() routes through home_shard_of — and the home shard's
    // service really does hold the session.
    expect_outcomes_equal(server.outcomes(sids[c]), serial_twin(requests[c]));
    EXPECT_EQ(server.session_state(sids[c]), service::SessionState::kDone);
  }

  // Nothing crossed shards: connection-local homes are the pure
  // single-reactor path.
  EXPECT_EQ(testing::sum_handoff_out(server), 0u);
  EXPECT_EQ(testing::sum_handoff_in(server), 0u);
  server.shutdown();
}

}  // namespace
}  // namespace shs::transport
