// Control-protocol codec: every control frame round-trips, decoders
// reject the wrong opcode, and the OpenRequest convention survives
// encode -> decode including its flag packing.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "transport/wire.h"

namespace shs::transport {
namespace {

TEST(Wire, ControlFramesLiveOnTheReservedSession) {
  const service::Frame open = make_open(7, to_bytes("blob"));
  EXPECT_TRUE(is_control(open));
  EXPECT_EQ(open.session_id, kControlSession);
  EXPECT_EQ(open.round, static_cast<std::uint32_t>(ControlOp::kOpen));
  EXPECT_EQ(open.position, 7u);
  EXPECT_EQ(open.payload, to_bytes("blob"));

  service::Frame data;
  data.session_id = 1;
  EXPECT_FALSE(is_control(data));
}

TEST(Wire, OpenRepliesRoundTrip) {
  EXPECT_EQ(decode_open_ok(make_open_ok(3, 0x1122334455667788ull)),
            0x1122334455667788ull);
  EXPECT_EQ(decode_open_err(make_open_err(3, "nope")), "nope");
  EXPECT_THROW((void)decode_open_ok(make_open_err(3, "nope")), CodecError);
  EXPECT_THROW((void)decode_open_err(make_shutdown()), CodecError);
}

TEST(Wire, DoneSummaryRoundTrips) {
  SessionSummary summary;
  summary.session_id = 42;
  summary.state = service::SessionState::kExpired;
  summary.confirmed = {4, 0, 3, 4};
  EXPECT_EQ(decode_done(make_done(summary)), summary);

  // An implausible party count is rejected before any allocation.
  service::Frame bogus = make_done(summary);
  bogus.payload[8 + 1] = 0xff;  // clobber the count's high byte
  bogus.payload[8 + 2] = 0xff;
  EXPECT_THROW((void)decode_done(bogus), CodecError);
}

TEST(Wire, OpenRequestRoundTripsAllFlagCombinations) {
  for (const bool sd : {false, true}) {
    for (const bool tr : {false, true}) {
      OpenRequest request;
      request.m = 5;
      request.self_distinction = sd;
      request.traceable = tr;
      request.seed = to_bytes("seed-bytes");
      EXPECT_EQ(decode_open_request(encode_open_request(request)), request);
    }
  }
  Bytes truncated = encode_open_request({});
  truncated.pop_back();
  EXPECT_THROW((void)decode_open_request(truncated), CodecError);
}

}  // namespace
}  // namespace shs::transport
