// The health plane end to end over real sockets: /healthz flips 200 ->
// 503 when a pump is wedged (the crash drill) and back once released, a
// redaction-clean postmortem bundle lands on the stall transition with
// the audit live, SLO exemplar sids scraped from /metrics resolve to
// records in /trace, and every response carries an accurate
// Content-Length.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/redact.h"
#include "obs/trace.h"
#include "transport/client.h"
#include "transport/fixture.h"
#include "transport/server.h"
#include "transport/socket.h"

namespace shs::transport {
namespace {

using testing::group_factory;
using testing::make_request;

std::string http_exchange(std::uint16_t port, const std::string& request) {
  Fd fd = tcp_connect("127.0.0.1", port, std::chrono::milliseconds(2000));
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd.get(), request.data() + sent, request.size() - sent, 0);
    if (n <= 0) throw TransportError(errno_message("send"));
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf, sizeof buf, 0);
    if (n < 0) throw TransportError(errno_message("recv"));
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

int status_of(const std::string& response) {
  // "HTTP/1.0 NNN ..."
  if (response.size() < 12) return 0;
  return std::stoi(response.substr(9, 3));
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

/// Polls `path` until its status matches, up to ~5s. Returns the last
/// response either way.
std::string poll_until_status(std::uint16_t port, const std::string& path,
                              int want) {
  std::string response;
  for (int i = 0; i < 250; ++i) {
    response = get(port, path);
    if (status_of(response) == want) return response;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return response;
}

ServerOptions health_options() {
  ServerOptions so;
  so.obs_endpoint = true;
  so.health_enabled = true;
  // Fast watchdog so the drill converges in test time: a wedged pump is
  // degraded after 100ms of silence and unhealthy one check later.
  so.health_check_interval = std::chrono::milliseconds(50);
  so.health_stall_after = std::chrono::milliseconds(100);
  so.health_unhealthy_after = 2;
  so.postmortem_dir = ::testing::TempDir() + "shs_health_transport_pm";
  return so;
}

TEST(HealthTransport, HealthzSessionsAndMetricsSurfaces) {
  obs::TraceRecorder trace;
  service::ServiceOptions svc;
  svc.trace = &trace;
  ServerOptions so = health_options();
  // A generous threshold: one long handshake pass (crypto-heavy, worse
  // under TSan) must not read as a stalled pump in this test — the
  // watchdog cells below are asserted to be 0.
  so.health_stall_after = std::chrono::seconds(30);
  TransportServer server(so, svc, group_factory());
  server.start();

  // A fresh, unwedged server is healthy from the first scrape.
  const std::string healthz = get(server.obs_port(), "/healthz");
  EXPECT_EQ(status_of(healthz), 200);
  EXPECT_NE(healthz.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);

  Client client({.port = server.port()});
  client.connect();
  client.open(make_request(2, false, "health-surface"));
  client.run();

  const std::string sessions = get(server.obs_port(), "/sessions");
  EXPECT_EQ(status_of(sessions), 200);
  EXPECT_NE(body_of(sessions).find("{\"sessions\": ["), std::string::npos);

  // The merged Prometheus surface now carries all three new families:
  // watchdog cells, SLO quantiles with exemplars, and (from the second
  // scrape on) the endpoint's own per-route counters.
  get(server.obs_port(), "/metrics");  // prime the scrape counters
  const std::string metrics = body_of(get(server.obs_port(), "/metrics"));
  EXPECT_NE(metrics.find(
                "shs_shard_health{shard=\"0\",component=\"event_loop\"} 0"),
            std::string::npos);
  EXPECT_NE(metrics.find(
                "shs_shard_health{shard=\"0\",component=\"pump\"} 0"),
            std::string::npos);
  EXPECT_NE(metrics.find("shs_slo_latency_us{shard=\"0\",dim=\"handshake\","
                         "q=\"p50\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("shs_health_checks_total"), std::string::npos);
  EXPECT_NE(
      metrics.find("shs_obs_scrape_requests_total{path=\"/metrics\"}"),
      std::string::npos);
  EXPECT_NE(metrics.find("shs_trace_records_total"), std::string::npos);

  server.shutdown();
}

TEST(HealthTransport, EveryResponseCarriesAccurateContentLength) {
  TransportServer server(health_options(), service::ServiceOptions{},
                         group_factory());
  server.start();

  for (const char* path : {"/healthz", "/sessions", "/metrics", "/nope"}) {
    const std::string response = get(server.obs_port(), path);
    const std::size_t pos = response.find("Content-Length: ");
    ASSERT_NE(pos, std::string::npos) << path;
    const std::size_t eol = response.find("\r\n", pos);
    const std::size_t length = static_cast<std::size_t>(
        std::stoull(response.substr(pos + 16, eol - pos - 16)));
    EXPECT_EQ(body_of(response).size(), length) << path;
  }
  server.shutdown();
}

TEST(HealthTransport, ManualPostmortemOverHttp) {
  ServerOptions so = health_options();
  so.postmortem_dir = ::testing::TempDir() + "shs_health_manual_pm";
  TransportServer server(so, service::ServiceOptions{}, group_factory());
  server.start();

  // /postmortem is POST-only.
  EXPECT_EQ(status_of(get(server.obs_port(), "/postmortem")), 405);

  const std::string response =
      http_exchange(server.obs_port(), "POST /postmortem HTTP/1.0\r\n\r\n");
  EXPECT_EQ(status_of(response), 200);
  EXPECT_NE(body_of(response).find("\"written\": true"), std::string::npos);
  ASSERT_NE(server.postmortem(), nullptr);
  EXPECT_EQ(server.postmortem()->captured(), 1u);

  // The bundle on disk carries every registered section.
  const std::string path = so.postmortem_dir + "/postmortem-0-manual.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream bundle;
  bundle << in.rdbuf();
  EXPECT_NE(bundle.str().find("\"reason\":\"manual\""), std::string::npos);
  EXPECT_NE(bundle.str().find("\"config\":"), std::string::npos);
  EXPECT_NE(bundle.str().find("\"health\":"), std::string::npos);
  EXPECT_NE(bundle.str().find("\"metrics\":"), std::string::npos);
  server.shutdown();
}

TEST(HealthTransport, WedgedPumpFlipsHealthzAndLandsCleanPostmortem) {
  // Run the whole drill with the redaction audit armed: the handshake
  // registers its real key material, so a bundle that reaches disk has
  // provably been scanned against the genuine secrets — not a no-op.
  obs::RedactionAudit::instance().reset();
  obs::RedactionAudit::instance().enable(true);

  ServerOptions so = health_options();
  so.postmortem_dir = ::testing::TempDir() + "shs_health_drill_pm";
  TransportServer server(so, service::ServiceOptions{}, group_factory());
  server.start();

  Client client({.port = server.port()});
  client.connect();
  client.open(make_request(2, false, "health-drill"));
  client.run();

  // A single heavyweight handshake pass can outlive the 100ms stall
  // threshold (pending raised at enqueue, beat only at end of pass), so
  // the watchdog may transiently flag the pump — and even capture a
  // bundle — before healing on the next check. Wait for quiescence, then
  // baseline the capture counter: the drill's own bundle is the one
  // after it.
  const std::string baseline =
      poll_until_status(server.obs_port(), "/healthz", 200);
  ASSERT_EQ(status_of(baseline), 200) << baseline;
  ASSERT_NE(server.postmortem(), nullptr);
  const std::uint64_t captured_before = server.postmortem()->captured();

  // The drill: wedge shard 0's pump. The wedge raises the pump's pending
  // flag, so the watchdog sees owed work with no beats — a stall, not
  // idleness — and must flip /healthz within a few 50ms check passes.
  server.debug_wedge_pump(0);
  const std::string sick = poll_until_status(server.obs_port(), "/healthz", 503);
  ASSERT_EQ(status_of(sick), 503) << sick;
  EXPECT_NE(sick.find("\"component\":\"pump\""), std::string::npos);
  EXPECT_FALSE(server.healthy());

  // The kUnhealthy transition captured a bundle, and the audit let it
  // through: zero violations against the session's registered secrets.
  for (int i = 0; i < 250 && server.postmortem()->captured() == captured_before;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.postmortem()->captured(), captured_before + 1);
  EXPECT_EQ(server.postmortem()->suppressed(), 0u);
  EXPECT_EQ(obs::RedactionAudit::instance().violations(), 0u);

  // Bundle seq == bundles written before this one.
  const std::string path = so.postmortem_dir + "/postmortem-" +
                           std::to_string(captured_before) +
                           "-stall-pump-shard0.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream bundle;
  bundle << in.rdbuf();
  EXPECT_NE(bundle.str().find("\"reason\":\"stall-pump-shard0\""),
            std::string::npos);
  EXPECT_TRUE(obs::RedactionAudit::instance().scan(bundle.str()).empty());

  // Release the wedge: the pump drains its pending work, beats, and the
  // next check pass heals the cell — /healthz returns to 200.
  server.debug_unwedge_pump(0);
  EXPECT_EQ(status_of(poll_until_status(server.obs_port(), "/healthz", 200)),
            200);
  EXPECT_TRUE(server.healthy());

  server.shutdown();
  obs::RedactionAudit::instance().reset();
  obs::RedactionAudit::instance().enable(false);
}

TEST(HealthTransport, ExemplarSidResolvesIntoTrace) {
  obs::TraceRecorder trace;
  service::ServiceOptions svc;
  svc.trace = &trace;
  TransportServer server(health_options(), svc, group_factory());
  server.start();

  Client client({.port = server.port()});
  client.connect();
  client.open(make_request(2, false, "exemplar"));
  client.run();

  // Scrape the handshake p50 exemplar sid off /metrics...
  const std::string metrics = body_of(get(server.obs_port(), "/metrics"));
  const std::string series =
      "shs_slo_exemplar_sid{shard=\"0\",dim=\"handshake\",q=\"p50\"} ";
  const std::size_t pos = metrics.find(series);
  ASSERT_NE(pos, std::string::npos);
  const std::uint64_t sid =
      std::stoull(metrics.substr(pos + series.size()));
  EXPECT_NE(sid, 0u);  // the completed session attributed its sample

  // ...and resolve it: the /trace timeline carries that session's
  // records (session lanes use the sid as tid).
  const std::string trace_body = body_of(get(server.obs_port(), "/trace"));
  EXPECT_NE(trace_body.find("\"tid\": " + std::to_string(sid)),
            std::string::npos);
  EXPECT_NE(trace_body.find("session opened"), std::string::npos);
  // One lane per shard: the shard-0 process is labeled for the viewer.
  EXPECT_NE(trace_body.find("\"args\": {\"name\": \"shard 0\"}"),
            std::string::npos);
  server.shutdown();
}

}  // namespace
}  // namespace shs::transport
