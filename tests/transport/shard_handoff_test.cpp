// Cross-shard handoff regressions, written for the TSan tree
// (tools/check.sh --shard): every boundary where one shard's thread
// touches another shard's state runs hot and concurrently here —
// remote-frame ingress queues, egress writes into another loop's
// connection, the merged metrics exports racing every shard's counters,
// the process-wide PrecompCache under all shards' crypto pools, and
// route purges fanning across shards while striped sessions are
// mid-flight. Assertions pin the handoff ledger (out == in, nothing
// unowned) and byte-exact outcomes, but the real point is that the
// sanitizer observes every pair of racing accesses.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fixture.h"
#include "service/clock.h"
#include "shard_fixture.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

using namespace std::chrono_literals;
using testing::expect_outcomes_equal;
using testing::group_factory;
using testing::make_request;
using testing::serial_twin;
using testing::shard_eventually;

TEST(ShardHandoff, StripedTrafficBalancesTheLedgerUnderConcurrentScrapes) {
  constexpr std::size_t kShards = 4;
  constexpr int kClients = 8;
  constexpr int kSessionsEach = 4;

  ServerOptions so;
  so.num_shards = kShards;
  so.stripe_sessions = true;  // every frame may cross shards
  so.auto_close_sessions = false;
  service::ServiceOptions svc;
  svc.threads = 2;
  TransportServer server(so, svc, group_factory());
  server.start();

  std::atomic<bool> scrape{true};
  std::vector<std::thread> scrapers;
  for (int r = 0; r < 3; ++r) {
    scrapers.emplace_back([&, r] {
      // Three distinct read mixes so the merged exports, the per-shard
      // gauge walks and the counter sums all race the writers.
      while (scrape.load(std::memory_order_relaxed)) {
        switch (r) {
          case 0:
            (void)server.metrics_json();
            break;
          case 1:
            (void)server.metrics_prometheus();
            break;
          default:
            (void)server.connection_count();
            (void)server.sessions_completed();
            (void)testing::sum_handoff_out(server);
            break;
        }
        std::this_thread::sleep_for(1ms);
      }
    });
  }

  std::vector<std::thread> clients;
  std::atomic<int> done{0};
  struct Run {
    std::uint64_t sid;
    OpenRequest request;
  };
  std::vector<std::vector<Run>> runs(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientOptions co;
      co.port = server.port();
      Client client(co);
      client.connect();
      for (int s = 0; s < kSessionsEach; ++s) {
        OpenRequest request =
            make_request(s % 2 == 0 ? 2 : 4, s % 3 == 0,
                         "shard-handoff-" + std::to_string(c) + "-" +
                             std::to_string(s));
        runs[c].push_back({client.open(request), std::move(request)});
      }
      for (const SessionSummary& summary : client.run()) {
        if (summary.state == service::SessionState::kDone) ++done;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  scrape.store(false);
  for (std::thread& t : scrapers) t.join();

  EXPECT_EQ(done.load(), kClients * kSessionsEach);
  for (int c = 0; c < kClients; ++c) {
    for (const Run& run : runs[c]) {
      SCOPED_TRACE("client " + std::to_string(c) + " sid " +
                   std::to_string(run.sid));
      expect_outcomes_equal(server.outcomes(run.sid), serial_twin(run.request));
    }
  }

  // The handoff ledger balances and striping really produced traffic.
  EXPECT_GT(testing::sum_handoff_out(server), 0u);
  EXPECT_EQ(testing::sum_handoff_in(server), testing::sum_handoff_out(server));
  EXPECT_EQ(testing::sum_unowned(server), 0u);

  // The process-wide precomp cache served every shard's pool: the merged
  // gauges (read by the scrapers all along) stayed coherent.
  const std::string json = server.metrics_json();
  EXPECT_NE(json.find("\"precomp\""), std::string::npos);
  server.shutdown();
}

TEST(ShardHandoff, RoutePurgeRacesStripedEgressWithoutLoss) {
  // Abrupt disconnects while striped sessions are mid-flight: the
  // victim's connection dies on shard A while its session's home shard B
  // may be pumping egress toward it — purge_routes_everywhere races
  // route_egress, and the only acceptable outcomes are delivery or a
  // counted drop, never a crash or an unowned-frame leak.
  constexpr std::size_t kShards = 4;
  constexpr int kVictims = 6;
  constexpr int kSurvivors = 4;

  service::ManualClock clock;
  ServerOptions so;
  so.num_shards = kShards;
  so.stripe_sessions = true;
  so.auto_close_sessions = false;
  so.expire_interval = 500ms;
  service::ServiceOptions svc;
  svc.clock = &clock;
  svc.session_deadline = 30000ms;
  TransportServer server(so, svc, group_factory());
  server.start();

  std::vector<std::thread> threads;
  std::vector<std::uint64_t> victim_sids(kVictims);
  for (int v = 0; v < kVictims; ++v) {
    threads.emplace_back([&, v] {
      ClientOptions co;
      co.port = server.port();
      Client client(co);
      client.connect();
      victim_sids[v] = client.open(
          make_request(4, false, "shard-purge-victim-" + std::to_string(v)));
      while (auto frame = client.recv_frame()) {
        if (!is_control(*frame)) break;  // session is mid-phase
      }
      client.close();  // vanish with egress still heading our way
    });
  }
  std::atomic<int> survived{0};
  for (int s = 0; s < kSurvivors; ++s) {
    threads.emplace_back([&, s] {
      ClientOptions co;
      co.port = server.port();
      Client client(co);
      client.connect();
      client.open(
          make_request(4, true, "shard-purge-survivor-" + std::to_string(s)));
      for (const SessionSummary& summary : client.run()) {
        if (summary.state == service::SessionState::kDone) ++survived;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Survivors never noticed; victims' sessions stalled, not crashed.
  EXPECT_EQ(survived.load(), kSurvivors);
  ASSERT_TRUE(
      shard_eventually([&] { return server.connection_count() == 0; }));
  for (const std::uint64_t sid : victim_sids) {
    EXPECT_NE(server.session_state(sid), service::SessionState::kDone);
  }
  EXPECT_EQ(testing::sum_unowned(server), 0u);

  // Their home shards reap them once the deadline passes.
  clock.advance(31000ms);
  ASSERT_TRUE(shard_eventually([&] {
    for (const std::uint64_t sid : victim_sids) {
      if (server.session_state(sid) != service::SessionState::kExpired) {
        return false;
      }
    }
    return true;
  }));
  EXPECT_EQ(server.sessions_completed(),
            static_cast<std::uint64_t>(kVictims + kSurvivors));
  server.shutdown();
}

}  // namespace
}  // namespace shs::transport
