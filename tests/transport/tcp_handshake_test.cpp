// End-to-end over real TCP: a TransportServer hosting the rendezvous
// service completes m-party handshakes (m in {2,4}, Scheme 1 and 2)
// driven by blocking relay clients on loopback sockets, and the outcomes
// — session key, partner sets, reasons and the serialized transcript —
// are byte-identical to the serial net driver. Also pinned here: the
// transport metrics JSON, concurrent clients multiplexing sessions,
// rejected opens, and graceful server shutdown notifying idle clients.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "fixture.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

using testing::expect_outcomes_equal;
using testing::group_factory;
using testing::make_request;
using testing::serial_twin;

ClientOptions client_for(const TransportServer& server) {
  ClientOptions options;
  options.port = server.port();
  return options;
}

TEST(TcpHandshake, SchemesAndWidthsMatchTheSerialDriverByteForByte) {
  ServerOptions so;
  service::ServiceOptions svc;
  so.auto_close_sessions = false;  // keep outcomes inspectable
  TransportServer server(so, svc, group_factory());
  server.start();
  ASSERT_GT(server.port(), 0);

  for (const std::uint32_t m : {2u, 4u}) {
    for (const bool scheme2 : {false, true}) {
      SCOPED_TRACE("m=" + std::to_string(m) +
                   (scheme2 ? " scheme2" : " scheme1"));
      const OpenRequest request = make_request(
          m, scheme2,
          "tcp-e2e-" + std::to_string(m) + (scheme2 ? "-s2" : "-s1"));
      const auto want = serial_twin(request);

      Client client(client_for(server));
      client.connect();
      const std::uint64_t sid = client.open(request);
      const auto& summaries = client.run();

      ASSERT_EQ(summaries.size(), 1u);
      EXPECT_EQ(summaries.back().session_id, sid);
      EXPECT_EQ(summaries.back().state, service::SessionState::kDone);

      const auto got = server.service().outcomes(sid);
      expect_outcomes_equal(got, want);
      ASSERT_EQ(summaries.back().confirmed.size(), m);
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(summaries.back().confirmed[i], want[i].confirmed_count());
      }
    }
  }

  EXPECT_EQ(server.sessions_completed(), 4u);
  EXPECT_EQ(server.egress_dropped(), 0u);
  server.shutdown();
}

TEST(TcpHandshake, OneClientMultiplexesManySessions) {
  ServerOptions so;
  service::ServiceOptions svc;
  svc.threads = 2;
  so.auto_close_sessions = false;
  TransportServer server(so, svc, group_factory());
  server.start();

  Client client(client_for(server));
  client.connect();
  std::vector<std::uint64_t> sids;
  std::vector<OpenRequest> requests;
  for (int s = 0; s < 6; ++s) {
    requests.push_back(make_request(s % 2 == 0 ? 2 : 4, s % 3 == 0,
                                    "tcp-mux-" + std::to_string(s)));
    sids.push_back(client.open(requests.back()));
  }
  const auto& summaries = client.run();
  ASSERT_EQ(summaries.size(), sids.size());

  for (std::size_t s = 0; s < sids.size(); ++s) {
    SCOPED_TRACE("session " + std::to_string(s));
    expect_outcomes_equal(server.service().outcomes(sids[s]),
                          serial_twin(requests[s]));
  }
  server.shutdown();
}

TEST(TcpHandshake, ConcurrentClientsShareTheServer) {
  ServerOptions so;
  service::ServiceOptions svc;
  svc.threads = 4;
  TransportServer server(so, svc, group_factory());
  server.start();

  constexpr int kClients = 4;
  constexpr int kSessionsEach = 3;
  std::vector<std::thread> threads;
  std::atomic<int> confirmed{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(client_for(server));
      client.connect();
      for (int s = 0; s < kSessionsEach; ++s) {
        client.open(make_request(c % 2 == 0 ? 2 : 4, false,
                                 "tcp-conc-" + std::to_string(c) + "-" +
                                     std::to_string(s)));
      }
      for (const SessionSummary& summary : client.run()) {
        if (summary.state == service::SessionState::kDone) ++confirmed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(confirmed.load(), kClients * kSessionsEach);
  EXPECT_EQ(server.sessions_completed(),
            static_cast<std::uint64_t>(kClients * kSessionsEach));
  // auto_close_sessions GC's each session once its DONE went out; the
  // worker's drain may still be a beat behind the last client's read.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  while (server.service().active_sessions() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.service().active_sessions(), 0u);
  server.shutdown();
}

TEST(TcpHandshake, MetricsJsonCarriesTheTransportCounters) {
  ServerOptions so;
  TransportServer server(so, {}, group_factory());
  server.start();

  Client client(client_for(server));
  client.connect();
  client.open(make_request(2, false, "tcp-metrics"));
  client.run();

  const service::ServiceMetrics& metrics = server.service().metrics();
  EXPECT_GT(metrics.tcp_bytes_in.load(), 0u);
  EXPECT_GT(metrics.tcp_bytes_out.load(), 0u);
  EXPECT_EQ(metrics.connections_accepted.load(), 1u);
  EXPECT_GT(metrics.write_queue_hwm.load(), 0u);

  const std::string json = server.service().metrics_json();
  for (const char* key :
       {"\"transport\"", "\"bytes_in\"", "\"bytes_out\"", "\"connections\"",
        "\"accepted\"", "\"killed_backpressure\"", "\"frames_unowned\"",
        "\"write_queue_hwm_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing:\n"
                                                 << json;
  }

  client.close();
  server.shutdown();
  EXPECT_EQ(metrics.connections_closed.load(),
            metrics.connections_accepted.load());
}

TEST(TcpHandshake, CrossConnectionSessionInjectionIsDropped) {
  ServerOptions so;
  so.auto_close_sessions = false;
  TransportServer server(so, {}, group_factory());
  server.start();

  Client victim(client_for(server));
  victim.connect();
  const OpenRequest request = make_request(2, false, "tcp-inject");
  const std::uint64_t sid = victim.open(request);

  // A second connection forges well-formed frames carrying the victim's
  // (sequential, guessable) session id, trying to occupy its first-write-
  // wins round slots before the victim's relay gets there.
  Client attacker(client_for(server));
  attacker.connect();
  service::Frame forged;
  forged.session_id = sid;
  forged.round = 1;
  forged.position = 0;
  forged.payload.assign(64, 0x5a);
  attacker.send_frame(forged);
  // Same-connection ordering: once this open's reply is back, the server
  // has already processed (and must have dropped) the forged frame.
  attacker.open(make_request(2, false, "tcp-inject-decoy"));

  const auto& summaries = victim.run();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries.back().state, service::SessionState::kDone);
  expect_outcomes_equal(server.service().outcomes(sid), serial_twin(request));
  EXPECT_GE(server.service().metrics().frames_unowned.load(), 1u);

  attacker.close();  // orphans the decoy session so shutdown need not drain it
  server.shutdown();
}

TEST(TcpHandshake, FailedStartThrowsAndDestructsCleanly) {
  TransportServer holder({}, {}, group_factory());
  holder.start();

  ServerOptions so;
  so.port = holder.port();  // already bound: start() must fail
  {
    TransportServer clash(so, {}, group_factory());
    EXPECT_THROW(clash.start(), TransportError);
  }  // the destructor of a never-started server must neither hang nor throw
  holder.shutdown();
}

TEST(TcpHandshake, RejectedOpenReportsTheFactoryError) {
  TransportServer server({}, {}, group_factory());
  server.start();

  Client client(client_for(server));
  client.connect();
  try {
    client.open(make_request(64, false, "tcp-reject"));  // group has 8
    FAIL() << "open should have been rejected";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported party count"),
              std::string::npos)
        << e.what();
  }
  // The connection survives a rejected open.
  const std::uint64_t sid = client.open(make_request(2, false, "tcp-after"));
  EXPECT_GT(sid, 0u);
  client.run();
  server.shutdown();
}

TEST(TcpHandshake, ShutdownNotifiesIdleClients) {
  TransportServer server({}, {}, group_factory());
  server.start();

  Client client(client_for(server));
  client.connect();
  client.open(make_request(2, false, "tcp-shutdown"));
  client.run();  // session done; the client is now idle

  std::thread stopper([&] { server.shutdown(); });
  // The server announces kShutdown before closing; the idle client sees it
  // (or a clean EOF if the close won the race).
  try {
    auto frame = client.recv_frame();
    while (frame && !client.server_shutdown()) {
      if (is_control(*frame) &&
          static_cast<ControlOp>(frame->round) == ControlOp::kShutdown) {
        break;
      }
      frame = client.recv_frame();
    }
  } catch (const TransportError&) {
    // rude close is acceptable only after the deadline; surface it
    FAIL() << "shutdown notification never arrived";
  }
  stopper.join();
}

}  // namespace
}  // namespace shs::transport
