// Shared scaffolding for the TCP transport tests: one process-wide group,
// the OpenRequest -> hosted-participants factory every test server
// installs, the serial-driver twin for byte-equality checks, and the
// outcome comparator (same fields service_test pins).
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/fixture.h"
#include "transport/server.h"
#include "transport/wire.h"

namespace shs::transport::testing {

inline core::testing::TestGroup& tcp_group() {
  static auto* group = [] {
    auto* g = new core::testing::TestGroup("tcp", core::GroupConfig{});
    for (core::MemberId id = 1; id <= 8; ++id) g->admit(id);
    return g;
  }();
  return *group;
}

inline core::HandshakeOptions options_of(const OpenRequest& request) {
  core::HandshakeOptions options;
  options.self_distinction = request.self_distinction;
  options.traceable = request.traceable;
  return options;
}

/// The SessionFactory under test: decodes the OpenRequest convention and
/// hosts members 0..m-1 of the shared group (position = member index),
/// mirroring exactly what serial_twin() runs.
inline SessionFactory group_factory() {
  return [](BytesView payload) {
    const OpenRequest request = decode_open_request(payload);
    auto& group = tcp_group();
    if (request.m < 2 || request.m > group.size()) {
      throw ProtocolError("open: unsupported party count");
    }
    const core::HandshakeOptions options = options_of(request);
    std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
    parts.reserve(request.m);
    for (std::size_t i = 0; i < request.m; ++i) {
      parts.push_back(group.member(i).handshake_party(i, request.m, options,
                                                      request.seed));
    }
    return parts;
  };
}

inline OpenRequest make_request(std::uint32_t m, bool scheme2,
                                std::string_view seed) {
  OpenRequest request;
  request.m = m;
  request.self_distinction = scheme2;
  request.seed = to_bytes(seed);
  return request;
}

/// What a serial run_handshake() of the same participants produces.
inline std::vector<core::HandshakeOutcome> serial_twin(
    const OpenRequest& request) {
  auto& group = tcp_group();
  std::vector<const core::Member*> members;
  members.reserve(request.m);
  for (std::size_t i = 0; i < request.m; ++i) {
    members.push_back(&group.member(i));
  }
  const std::string seed(request.seed.begin(), request.seed.end());
  return core::testing::handshake(members, options_of(request), seed);
}

inline void expect_outcomes_equal(
    const std::vector<core::HandshakeOutcome>& got,
    const std::vector<core::HandshakeOutcome>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("position " + std::to_string(i));
    EXPECT_EQ(got[i].completed, want[i].completed);
    EXPECT_EQ(got[i].partner, want[i].partner);
    EXPECT_EQ(got[i].full_success, want[i].full_success);
    EXPECT_EQ(got[i].self_distinction_violated,
              want[i].self_distinction_violated);
    EXPECT_EQ(got[i].session_key, want[i].session_key);
    EXPECT_EQ(got[i].failure, want[i].failure);
    EXPECT_EQ(got[i].reason, want[i].reason);
    EXPECT_EQ(got[i].transcript.serialize(), want[i].transcript.serialize());
  }
}

}  // namespace shs::transport::testing
