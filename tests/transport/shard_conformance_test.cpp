// Cross-shard conformance sweep: the same scenario set — widths 2/4/8,
// both schemes, clean and under the seeded drop+tamper schedule — runs
// against servers sharded 1, 2 and 4 ways, with session striping both
// off and on. The verdicts must be bit-identical in every configuration
// and equal to the serial driver twin (fresh, identically-seeded fault
// stacks replay the schedule, so the oracle is exact, not statistical).
// Also pinned here: the cross-shard handoff counters balance exactly
// (every frame handed off is ingested by its home shard, none ever
// counted unowned), striping is what creates handoff traffic, and the
// wire shape a client observes — (round, position, size) per frame — is
// independent of the shard count and of striping: sharding adds no
// observable of its own to the wire.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fixture.h"
#include "shard_fixture.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

using testing::expect_outcomes_equal;
using testing::FaultStack;
using testing::group_factory;
using testing::make_request;
using testing::PerShardFaults;
using testing::open_and_record;
using testing::serial_twin;
using testing::serial_twin_faulted;
using testing::TamperStack;
using testing::WireShape;

struct Scenario {
  std::uint32_t m;
  bool scheme2;
  std::string name;
};

std::vector<Scenario> scenario_set() {
  std::vector<Scenario> set;
  for (const std::uint32_t m : {2u, 4u, 8u}) {
    for (const bool scheme2 : {false, true}) {
      set.push_back({m, scheme2,
                     "shard-conf-" + std::to_string(m) +
                         (scheme2 ? "-s2" : "-s1")});
    }
  }
  return set;
}

/// One full sweep against one server configuration: every scenario
/// multiplexed over a single client (one connection, many opens — with
/// striping on, the opens then really fan out across shards instead of
/// tracking the connection dealing in lockstep), outcomes collected by
/// scenario name.
std::map<std::string, std::vector<core::HandshakeOutcome>> run_sweep(
    TransportServer& server, const std::vector<Scenario>& scenarios) {
  ClientOptions co;
  co.port = server.port();
  Client client(co);
  client.connect();
  std::map<std::string, std::uint64_t> sids;
  for (const Scenario& scenario : scenarios) {
    sids[scenario.name] =
        client.open(make_request(scenario.m, scenario.scheme2, scenario.name));
  }
  client.run();
  std::map<std::string, std::vector<core::HandshakeOutcome>> outcomes;
  for (const auto& [name, sid] : sids) outcomes[name] = server.outcomes(sid);
  return outcomes;
}

void expect_sweeps_equal(
    const std::map<std::string, std::vector<core::HandshakeOutcome>>& got,
    const std::map<std::string, std::vector<core::HandshakeOutcome>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [name, outcomes] : want) {
    SCOPED_TRACE("scenario " + name);
    const auto it = got.find(name);
    ASSERT_NE(it, got.end());
    expect_outcomes_equal(it->second, outcomes);
  }
}

/// Mutual-confirmation sanity on every outcome set: confirmation is
/// symmetric and mutually fully-successful parties share a session key —
/// the transport-level face of "no false accept" (the single shared test
/// group means group membership itself cannot be violated here; the
/// net-level conformance suite covers cross-group forgery).
void expect_confirmations_coherent(
    const std::map<std::string, std::vector<core::HandshakeOutcome>>& sweep) {
  for (const auto& [name, outcomes] : sweep) {
    SCOPED_TRACE("scenario " + name);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      for (std::size_t j = 0; j < outcomes.size(); ++j) {
        if (!outcomes[i].partner[j] || i == j) continue;
        if (outcomes[i].full_success && outcomes[j].full_success &&
            outcomes[j].partner[i]) {
          EXPECT_EQ(outcomes[i].session_key, outcomes[j].session_key)
              << "positions " << i << "," << j;
        }
      }
    }
  }
}

// The headline conformance matrix: {1, 2, 4} shards x {local, striped}
// homes x {clean, faulted} schedules, all bit-identical to the 1-shard
// baseline and to the serial twins.
TEST(ShardConformance, VerdictsAreBitIdenticalAcrossShardCounts) {
  const std::vector<Scenario> scenarios = scenario_set();

  for (const bool faulted : {false, true}) {
    SCOPED_TRACE(faulted ? "faulted" : "clean");
    std::map<std::string, std::vector<core::HandshakeOutcome>> baseline;

    for (const std::size_t shards : {1u, 2u, 4u}) {
      for (const bool stripe : {false, true}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     (stripe ? " striped" : " local"));
        ServerOptions so;
        so.num_shards = shards;
        so.stripe_sessions = stripe;
        so.auto_close_sessions = false;
        PerShardFaults<FaultStack> faults;
        if (faulted) faults.install(so);
        TransportServer server(so, {}, group_factory());
        server.start();

        const auto sweep = run_sweep(server, scenarios);

        // Handoff bookkeeping balances exactly: nothing in flight once
        // every session is terminal, nothing ever unowned.
        EXPECT_EQ(testing::sum_handoff_in(server),
                  testing::sum_handoff_out(server));
        EXPECT_EQ(testing::sum_unowned(server), 0u);
        if (shards > 1 && stripe) {
          // Striping with one connection per scenario guarantees most
          // sessions home away from their connection's shard.
          EXPECT_GT(testing::sum_handoff_out(server), 0u);
        }
        if (!stripe) {
          EXPECT_EQ(testing::sum_handoff_out(server), 0u);
        }
        server.shutdown();

        expect_confirmations_coherent(sweep);
        if (baseline.empty()) {
          baseline = sweep;
          // The anchor configuration must equal the serial driver.
          for (const Scenario& scenario : scenarios) {
            SCOPED_TRACE("twin of " + scenario.name);
            const OpenRequest request =
                make_request(scenario.m, scenario.scheme2, scenario.name);
            expect_outcomes_equal(
                baseline.at(scenario.name),
                faulted ? serial_twin_faulted<FaultStack>(request)
                        : serial_twin(request));
          }
        } else {
          expect_sweeps_equal(sweep, baseline);
        }
      }
    }
  }
}

// Observer indistinguishability through the sharded transport: the
// (round, position, size) sequence a client sees for a session depends
// only on (m, scheme) and the seeded fault schedule — never on the
// shard count or on striping. (Failing-vs-succeeding indistinguishability
// is the net-level conformance suite's property; what sharding must
// guarantee is that it adds no observable of its own, so the baseline
// here is keyed per fault setting and compared across shard layouts.)
TEST(ShardConformance, WireShapeIsIndependentOfSharding) {
  const std::vector<Scenario> scenarios = scenario_set();
  // (scenario, fault setting) -> shape sequence from the 1-shard run.
  std::map<std::string, std::vector<WireShape>> baseline;

  for (const bool faulted : {false, true}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(faulted ? "tampered" : "clean") +
                   " shards=" + std::to_string(shards));
      ServerOptions so;
      so.num_shards = shards;
      so.stripe_sessions = shards > 1;  // maximize cross-shard traffic
      so.auto_close_sessions = false;
      PerShardFaults<TamperStack> faults;
      if (faulted) faults.install(so);
      TransportServer server(so, {}, group_factory());
      server.start();

      // All scenarios multiplexed over one connection so striping
      // really homes sessions away from it — the shapes recorded here
      // crossed the handoff whenever the layout allows it.
      ClientOptions co;
      co.port = server.port();
      Client client(co);
      client.connect();
      std::vector<OpenRequest> requests;
      for (const Scenario& scenario : scenarios) {
        requests.push_back(
            make_request(scenario.m, scenario.scheme2, scenario.name));
      }
      const auto shapes = open_and_record(client, requests);
      ASSERT_EQ(shapes.size(), scenarios.size());
      for (std::size_t i = 0; i < scenarios.size(); ++i) {
        SCOPED_TRACE("scenario " + scenarios[i].name);
        const std::vector<WireShape>& shape = shapes[i];
        ASSERT_FALSE(shape.empty());
        const std::string key =
            scenarios[i].name + (faulted ? "#tampered" : "#clean");
        auto [it, inserted] = baseline.try_emplace(key, shape);
        if (!inserted) {
          EXPECT_EQ(shape, it->second)
              << "wire shape leaked the shard layout";
        }
      }
      server.shutdown();
    }
  }
}

}  // namespace
}  // namespace shs::transport
