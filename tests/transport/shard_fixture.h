// Extra scaffolding for the sharded-transport suite (on top of
// fixture.h): the seeded drop+tamper fault stack shared with the service
// soak (fresh instances replay identical schedules — decisions hash on
// (seed, round, sender, receiver), never on shard placement), the
// faulted serial twin, cross-shard counter sums, and a recording relay
// that captures the wire shape (round, position, payload size) every
// session presents to its client.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fixture.h"
#include "net/faults.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport::testing {

constexpr std::uint64_t kShardDropSeed = 0xd20b;
constexpr std::uint64_t kShardTamperSeed = 0x7a3b;

/// Same schedule family as the service soak: stateless, purely
/// seed-hashed faults, so per-shard instances with identical seeds make
/// session verdicts independent of which shard homes the session.
struct FaultStack {
  net::DropFault drop{kShardDropSeed, {.per_message = 0.02}};
  net::TamperFault tamper{kShardTamperSeed, {.probability = 0.02}};
  net::ChainAdversary chain{{&drop, &tamper}};
};

/// Tamper-only stack for wire-shape checks: drops change the frame
/// count, tampering must not change any (round, position, size).
struct TamperStack {
  net::TamperFault tamper{kShardTamperSeed, {.probability = 0.25}};
  net::ChainAdversary chain{{&tamper}};
};

/// Installs one fresh, identically-seeded stack per shard; owns them for
/// the server's lifetime (the service borrows the adversary pointer).
template <typename Stack>
class PerShardFaults {
 public:
  void install(ServerOptions& options) {
    options.per_shard_options = [this](std::size_t,
                                       service::ServiceOptions& svc) {
      stacks_.push_back(std::make_unique<Stack>());
      svc.adversary = &stacks_.back()->chain;
    };
  }

 private:
  std::vector<std::unique_ptr<Stack>> stacks_;
};

/// What a serial run of the same participants under a fresh,
/// identically-seeded adversary produces.
template <typename Stack>
std::vector<core::HandshakeOutcome> serial_twin_faulted(
    const OpenRequest& request) {
  auto& group = tcp_group();
  std::vector<const core::Member*> members;
  members.reserve(request.m);
  for (std::size_t i = 0; i < request.m; ++i) {
    members.push_back(&group.member(i));
  }
  const std::string seed(request.seed.begin(), request.seed.end());
  Stack twin;
  return core::testing::handshake(members, options_of(request), seed,
                                  &twin.chain);
}

inline std::uint64_t sum_handoff_out(const TransportServer& server) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < server.num_shards(); ++i) {
    total += const_cast<TransportServer&>(server)
                 .service(i)
                 .metrics()
                 .frames_handoff_out.load();
  }
  return total;
}

inline std::uint64_t sum_handoff_in(const TransportServer& server) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < server.num_shards(); ++i) {
    total += const_cast<TransportServer&>(server)
                 .service(i)
                 .metrics()
                 .frames_handoff_in.load();
  }
  return total;
}

inline std::uint64_t sum_unowned(const TransportServer& server) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < server.num_shards(); ++i) {
    total += const_cast<TransportServer&>(server)
                 .service(i)
                 .metrics()
                 .frames_unowned.load();
  }
  return total;
}

/// One observed session frame, as shape only.
struct WireShape {
  std::uint32_t round = 0;
  std::uint32_t position = 0;
  std::size_t size = 0;

  friend bool operator==(const WireShape&, const WireShape&) = default;
};

/// Opens every request on one connection (raw kOpen frames, so no frame
/// is ever relayed outside this loop — Client::open()'s internal relay
/// would silently consume early sessions' frames and DONEs) and relays
/// like Client::run() while recording, per request, the shape of every
/// inbound session frame. Returns shape sequences indexed like
/// `requests`, complete once every session reported kDone.
inline std::vector<std::vector<WireShape>> open_and_record(
    Client& client, const std::vector<OpenRequest>& requests) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    client.send_frame(make_open(static_cast<std::uint32_t>(i + 1),
                                encode_open_request(requests[i])));
  }
  std::vector<std::vector<WireShape>> shapes(requests.size());
  std::unordered_map<std::uint64_t, std::size_t> index_of;  // sid -> request
  std::size_t done = 0;
  while (done < requests.size()) {
    std::optional<service::Frame> frame = client.recv_frame();
    if (!frame.has_value()) break;  // clean EOF
    if (is_control(*frame)) {
      switch (static_cast<ControlOp>(frame->round)) {
        case ControlOp::kOpenOk:
          index_of[decode_open_ok(*frame)] = frame->position - 1;
          break;
        case ControlOp::kOpenErr:
          throw ProtocolError("open rejected: " + decode_open_err(*frame));
        case ControlOp::kDone:
          ++done;
          break;
        default:
          break;  // kShutdown mid-sweep would time the read out below
      }
      continue;
    }
    shapes[index_of.at(frame->session_id)].push_back(
        {frame->round, frame->position, frame->payload.size()});
    client.send_frame(*frame);
  }
  return shapes;
}

template <typename Pred>
bool shard_eventually(Pred pred,
                      std::chrono::milliseconds budget =
                          std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

}  // namespace shs::transport::testing
