// Partial-write / short-read fuzz: the transport must reassemble frames
// correctly however the kernel slices the stream. A socketpair end is
// adopted by the server as a connection; the test-side relay deliberately
// misbehaves — tiny SO_SNDBUF, every write chopped into random 1..97-byte
// chunks, reads bounded by a random 1..64-byte buffer — across several
// seeds, and the hosted handshake must still finish byte-identical to
// the serial driver. The Client's own blocking I/O is fuzzed the same
// way through shrunken socket buffers.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <random>
#include <string>

#include "fixture.h"
#include "transport/client.h"
#include "transport/server.h"
#include "transport/socket.h"

namespace shs::transport {
namespace {

using testing::expect_outcomes_equal;
using testing::group_factory;
using testing::make_request;
using testing::serial_twin;

/// Writes `wire` to `fd` in randomized chunks, spinning on the (blocking,
/// tiny-buffered) socket until all of it is out.
void chunked_write(int fd, BytesView wire, std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> chunk(1, 97);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const std::size_t take = std::min(chunk(rng), wire.size() - sent);
    const ssize_t n = ::write(fd, wire.data() + sent, take);
    ASSERT_GT(n, 0) << errno_message("write");
    sent += static_cast<std::size_t>(n);
  }
}

TEST(PartialWrite, MisbehavingRelayStillYieldsSerialOutcomes) {
  for (const std::uint32_t fuzz_seed : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE("fuzz seed " + std::to_string(fuzz_seed));
    std::mt19937 rng(fuzz_seed);

    ServerOptions so;
    so.auto_close_sessions = false;
    TransportServer server(so, {}, group_factory());
    server.start();

    auto [server_end, test_end] = stream_socketpair();
    set_socket_buffers(server_end.get(), 4096, 4096);
    set_socket_buffers(test_end.get(), 4096, 4096);
    server.adopt_connection(std::move(server_end));

    const OpenRequest request =
        make_request(3, fuzz_seed % 2 == 0,
                     "tcp-fuzz-" + std::to_string(fuzz_seed));
    const auto want = serial_twin(request);

    // Hand-rolled relay: open, then echo every session frame back, with
    // all writes chunked and all reads short.
    std::uint64_t sid = 0;
    bool done = false;
    service::SessionState final_state = service::SessionState::kCollecting;
    service::FrameBuffer in_buf;
    std::uniform_int_distribution<std::size_t> read_size(1, 64);

    chunked_write(test_end.get(), service::encode_frame(make_open(
                                      7, encode_open_request(request))),
                  rng);
    while (!done) {
      while (auto frame = in_buf.next()) {
        if (is_control(*frame)) {
          switch (static_cast<ControlOp>(frame->round)) {
            case ControlOp::kOpenOk:
              sid = decode_open_ok(*frame);
              break;
            case ControlOp::kDone: {
              const SessionSummary summary = decode_done(*frame);
              EXPECT_EQ(summary.session_id, sid);
              final_state = summary.state;
              done = true;
              break;
            }
            default:
              FAIL() << "unexpected control op " << frame->round;
          }
        } else {
          chunked_write(test_end.get(), service::encode_frame(*frame), rng);
        }
        if (done) break;
      }
      if (done) break;
      Bytes buf(read_size(rng));
      const ssize_t n = ::read(test_end.get(), buf.data(), buf.size());
      ASSERT_GT(n, 0) << "server hung up mid-handshake";
      in_buf.feed(BytesView(buf.data(), static_cast<std::size_t>(n)));
    }

    ASSERT_NE(sid, 0u);
    EXPECT_EQ(final_state, service::SessionState::kDone);
    expect_outcomes_equal(server.service().outcomes(sid), want);
    server.shutdown();
  }
}

TEST(PartialWrite, TinySocketBuffersFuzzTheBlockingClientToo) {
  ServerOptions so;
  so.auto_close_sessions = false;
  so.limits.read_chunk = 512;  // force many short reads server-side too
  TransportServer server(so, {}, group_factory());
  server.start();

  ClientOptions co;
  co.port = server.port();
  co.sndbuf = 2048;
  co.rcvbuf = 2048;
  Client client(co);
  client.connect();

  const OpenRequest request = make_request(4, true, "tcp-fuzz-client");
  const auto want = serial_twin(request);
  const std::uint64_t sid = client.open(request);
  const auto& summaries = client.run();

  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries.front().state, service::SessionState::kDone);
  expect_outcomes_equal(server.service().outcomes(sid), want);
  server.shutdown();
}

}  // namespace
}  // namespace shs::transport
