// The sharded-transport soak (`ctest -L stress`): SHS_SHARD_STRESS_SESSIONS
// (default 1000) sessions of mixed width and scheme cross a 4-shard
// server with session striping on — so nearly every frame of most
// sessions takes the cross-shard handoff — driven by a pool of client
// threads whose arrival order is shuffled, while dropper clients vanish
// abruptly mid-phase and scraper threads hammer the merged metrics
// exports. The seeded drop+tamper schedule from the service soak runs on
// every shard, and the oracle stays exact: every surviving session must
// match a fresh serial twin byte-for-byte, every orphaned session is
// reaped by its home shard's expiry timer once the ManualClock crosses
// the deadline, and the handoff ledger balances to zero in flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fixture.h"
#include "service/clock.h"
#include "shard_fixture.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

using namespace std::chrono_literals;
using testing::expect_outcomes_equal;
using testing::FaultStack;
using testing::group_factory;
using testing::make_request;
using testing::PerShardFaults;
using testing::serial_twin_faulted;
using testing::shard_eventually;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

TEST(ShardStress, FourShardSoakMatchesSerialTwinsExactly) {
  const std::size_t sessions = env_size("SHS_SHARD_STRESS_SESSIONS", 1000);
  const std::size_t client_threads =
      std::min<std::size_t>(16, std::max<std::size_t>(1, sessions / 4));
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kDroppers = 8;

  service::ManualClock clock;
  ServerOptions so;
  so.num_shards = kShards;
  so.stripe_sessions = true;
  so.auto_close_sessions = false;  // outcomes stay inspectable
  so.expire_interval = 500ms;      // virtual cadence
  PerShardFaults<FaultStack> faults;
  faults.install(so);
  service::ServiceOptions svc;
  svc.threads = 2;  // per shard
  svc.clock = &clock;
  svc.session_deadline = 30000ms;  // virtual: nothing expires mid-soak
  TransportServer server(so, svc, group_factory());
  server.start();

  constexpr std::uint32_t kSizes[] = {2, 4, 2, 8};  // mean m = 4
  struct Opened {
    std::uint64_t sid;
    OpenRequest request;
  };
  std::mutex opened_mu;
  std::vector<Opened> opened;
  opened.reserve(sessions);

  // Shuffled arrival: session indices are dealt to client threads
  // round-robin, but each thread staggers its opens by a seeded jitter,
  // so open order (and therefore sid/shard assignment) interleaves
  // differently from the index order on every run.
  std::atomic<bool> scrape{true};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < client_threads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(0x5a5a + t);
      ClientOptions co;
      co.port = server.port();
      co.io_timeout = 60000ms;  // the soak outlives the default budget
      Client client(co);
      client.connect();
      std::vector<Opened> mine;
      for (std::size_t s = t; s < sessions; s += client_threads) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng() % 500));
        OpenRequest request =
            make_request(kSizes[s % 4], s % 3 == 0,
                         "shard-soak-" + std::to_string(s));
        mine.push_back({client.open(request), std::move(request)});
      }
      client.run();
      const std::lock_guard<std::mutex> lock(opened_mu);
      opened.insert(opened.end(), mine.begin(), mine.end());
    });
  }

  // Droppers: open one session each, vanish after the first crypto
  // frame. Their sessions orphan mid-phase on whatever shard homes them.
  std::mutex orphan_mu;
  std::vector<std::uint64_t> orphans;
  for (std::size_t d = 0; d < kDroppers; ++d) {
    threads.emplace_back([&, d] {
      ClientOptions co;
      co.port = server.port();
      co.io_timeout = 60000ms;
      Client client(co);
      client.connect();
      const std::uint64_t sid = client.open(
          make_request(2, false, "shard-soak-drop-" + std::to_string(d)));
      while (auto frame = client.recv_frame()) {
        if (!is_control(*frame)) break;  // mid-phase: round 0 arrived
      }
      client.close();
      const std::lock_guard<std::mutex> lock(orphan_mu);
      orphans.push_back(sid);
    });
  }

  // Scrapers: the merged read paths race every shard's writers for the
  // whole soak (this is what the TSan tree chews on).
  std::vector<std::thread> scrapers;
  for (int r = 0; r < 2; ++r) {
    scrapers.emplace_back([&] {
      while (scrape.load(std::memory_order_relaxed)) {
        (void)server.metrics_json();
        (void)server.metrics_prometheus();
        (void)server.connection_count();
        std::this_thread::sleep_for(10ms);
      }
    });
  }

  for (std::thread& t : threads) t.join();
  ASSERT_EQ(opened.size(), sessions);
  ASSERT_EQ(orphans.size(), kDroppers);

  // Exact per-session oracle: fresh identically-seeded stacks replay the
  // service's fault schedule in the serial driver, shard-independently.
  for (const Opened& session : opened) {
    SCOPED_TRACE("sid " + std::to_string(session.sid) +
                 " (m=" + std::to_string(session.request.m) + ", home shard " +
                 std::to_string(server.home_shard_of(session.sid)) + ")");
    ASSERT_EQ(server.session_state(session.sid), service::SessionState::kDone);
    expect_outcomes_equal(server.outcomes(session.sid),
                          serial_twin_faulted<FaultStack>(session.request));
  }

  // The orphans are stalled, not gone — no virtual time has passed.
  for (const std::uint64_t sid : orphans) {
    EXPECT_NE(server.session_state(sid), service::SessionState::kDone);
  }
  // Cross the deadline: every home shard's expiry timer reaps its own.
  clock.advance(31000ms);
  ASSERT_TRUE(shard_eventually([&] {
    return std::all_of(orphans.begin(), orphans.end(), [&](std::uint64_t sid) {
      return server.session_state(sid) == service::SessionState::kExpired;
    });
  })) << "orphaned sessions were never reaped";

  scrape.store(false);
  for (std::thread& t : scrapers) t.join();

  // Ledger checks: striping 4 ways homes ~3/4 of sessions off their
  // connection's shard, so handoff traffic is guaranteed; the counters
  // balance exactly once everything is terminal, and nothing was ever
  // dropped as unowned.
  EXPECT_GT(testing::sum_handoff_out(server), 0u);
  EXPECT_EQ(testing::sum_handoff_in(server), testing::sum_handoff_out(server));
  EXPECT_EQ(testing::sum_unowned(server), 0u);
  EXPECT_EQ(server.sessions_completed(),
            static_cast<std::uint64_t>(sessions + kDroppers));

  // Work really spread across the reactors: every shard homed sessions.
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_GT(server.service(i).metrics().sessions_opened.load(), 0u)
        << "shard " << i << " never homed a session";
  }
  server.shutdown();
}

}  // namespace
}  // namespace shs::transport
