// Churn-boundary edge cases for the CGKD controllers, feeding the group
// authority service: capacity exhaustion on the tree schemes, re-join of
// a revoked id (fresh leaf, no access to the interregnum keys), leave of
// a never-admitted or already-revoked id, and a seeded-churn property
// sweep pinning strict epoch monotonicity across all three schemes.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "cgkd/cgkd.h"
#include "cgkd/lkh.h"
#include "cgkd/star.h"
#include "cgkd/subset_diff.h"
#include "common/errors.h"
#include "crypto/drbg.h"

namespace shs::cgkd {
namespace {

using Factory =
    std::function<std::unique_ptr<CgkdController>(num::RandomSource&)>;

struct SchemeCase {
  std::string name;
  Factory make;
};

const SchemeCase kSchemes[] = {
    {"star", [](num::RandomSource& r) { return std::make_unique<StarCgkd>(r); }},
    {"lkh",
     [](num::RandomSource& r) { return std::make_unique<LkhCgkd>(16, r); }},
    {"sd",
     [](num::RandomSource& r) {
       return std::make_unique<SubsetDiffCgkd>(16, r);
     }},
};

class CgkdEdgeAllSchemes : public ::testing::TestWithParam<SchemeCase> {
 protected:
  CgkdEdgeAllSchemes() : rng_(to_bytes("cgkd-edge-" + GetParam().name)) {}
  crypto::HmacDrbg rng_;
};

// A full LKH tree rejects further joins without perturbing any state:
// epoch, group key and membership are exactly what they were, and the
// group keeps operating (a later leave frees the leaf for a new join).
TEST(LkhEdge, JoinOnFullTreeThrowsAndLeavesStateIntact) {
  crypto::HmacDrbg rng(to_bytes("lkh-full"));
  LkhCgkd gc(4, rng);
  for (MemberId id = 1; id <= 4; ++id) (void)gc.join(id);
  const std::uint64_t epoch = gc.epoch();
  const Bytes key = gc.group_key();

  EXPECT_THROW((void)gc.join(5), ProtocolError);
  EXPECT_EQ(gc.epoch(), epoch) << "failed join must not bump the epoch";
  EXPECT_EQ(gc.group_key(), key) << "failed join must not rekey";
  EXPECT_EQ(gc.member_count(), 4u);
  EXPECT_FALSE(gc.is_member(5));

  (void)gc.leave(2);
  auto admitted = gc.join(5);
  EXPECT_TRUE(gc.is_member(5));
  EXPECT_EQ(admitted.member->group_key(), gc.group_key());
}

// A revoked id may be admitted again. The re-admission is a fresh leaf:
// the new member state tracks the group from its join onward, while the
// *old* (revoked) state decrypts none of the later broadcasts — revoking
// and re-admitting never resurrects the old key material.
TEST_P(CgkdEdgeAllSchemes, RejoinOfRevokedIdIsAFreshMember) {
  auto gc = GetParam().make(rng_);
  auto a = gc->join(1);
  auto b = gc->join(2);
  ASSERT_TRUE(a.member->process_rekey(b.broadcast));

  const RekeyMessage revoke = gc->leave(1);
  ASSERT_TRUE(b.member->process_rekey(revoke));
  EXPECT_FALSE(gc->is_member(1));

  auto rejoined = gc->join(1);
  ASSERT_TRUE(b.member->process_rekey(rejoined.broadcast));
  EXPECT_TRUE(gc->is_member(1));
  EXPECT_EQ(gc->member_count(), 2u);
  EXPECT_EQ(rejoined.member->group_key(), gc->group_key());
  EXPECT_EQ(b.member->group_key(), gc->group_key());

  // The pre-revocation state is dead: it cannot follow the group across
  // its own revocation even though "its" id is a member again.
  EXPECT_FALSE(a.member->process_rekey(gc->refresh()));
}

// leave() of an id the controller never admitted — and of an id that was
// already revoked — throws without a rekey: no epoch bump, same key,
// membership untouched.
TEST_P(CgkdEdgeAllSchemes, LeaveOfNonMemberThrowsWithoutRekey) {
  auto gc = GetParam().make(rng_);
  (void)gc->join(1);
  (void)gc->join(2);
  (void)gc->leave(2);
  const std::uint64_t epoch = gc->epoch();
  const Bytes key = gc->group_key();

  EXPECT_THROW((void)gc->leave(99), ProtocolError);  // never admitted
  EXPECT_THROW((void)gc->leave(2), ProtocolError);   // already revoked
  EXPECT_EQ(gc->epoch(), epoch);
  EXPECT_EQ(gc->group_key(), key);
  EXPECT_EQ(gc->member_count(), 1u);
}

// Seeded-churn property: over a random join/leave/refresh schedule every
// successful mutation bumps the epoch by exactly one, broadcasts carry
// that epoch, and a member processing every broadcast tracks the
// controller's epoch and key exactly. Rejected operations (duplicate
// join, bogus leave, full tree) never advance the clock.
TEST_P(CgkdEdgeAllSchemes, EpochStrictlyMonotoneUnderSeededChurn) {
  auto gc = GetParam().make(rng_);
  crypto::HmacDrbg schedule(to_bytes("churn-schedule-" + GetParam().name));

  auto witness = gc->join(1);  // processes every broadcast below
  std::uint64_t epoch = gc->epoch();

  for (int step = 0; step < 200; ++step) {
    const std::uint64_t op = schedule.below_u64(3);
    const MemberId id = 2 + schedule.below_u64(20);  // never the witness
    RekeyMessage msg;
    try {
      if (op == 0) {
        msg = gc->join(id).broadcast;
      } else if (op == 1) {
        msg = gc->leave(id);
      } else {
        msg = gc->refresh();
      }
    } catch (const ProtocolError&) {
      // Duplicate join / non-member leave / full tree: clock untouched.
      EXPECT_EQ(gc->epoch(), epoch);
      continue;
    }
    EXPECT_EQ(gc->epoch(), epoch + 1) << "epoch must advance by exactly 1";
    EXPECT_EQ(msg.epoch, gc->epoch()) << "broadcast must carry the epoch";
    epoch = gc->epoch();
    ASSERT_TRUE(witness.member->process_rekey(msg)) << "step " << step;
    EXPECT_EQ(witness.member->epoch(), epoch);
    EXPECT_EQ(witness.member->group_key(), gc->group_key());
  }
  EXPECT_GT(epoch, 50u) << "schedule degenerated — too few mutations ran";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CgkdEdgeAllSchemes,
                         ::testing::ValuesIn(kSchemes),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace shs::cgkd
