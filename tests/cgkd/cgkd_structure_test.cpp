// Structural invariants of the CGKD implementations: rekey message
// composition, epoch monotonicity, LKH path-length arithmetic, star
// recipient pruning, SD determinism.
#include <gtest/gtest.h>

#include "cgkd/lkh.h"
#include "cgkd/star.h"
#include "cgkd/subset_diff.h"
#include "common/codec.h"
#include "crypto/drbg.h"

namespace shs::cgkd {
namespace {

TEST(Structure, EpochsAreStrictlyMonotonic) {
  crypto::HmacDrbg rng(to_bytes("mono"));
  LkhCgkd gc(16, rng);
  std::uint64_t last = gc.epoch();
  for (MemberId id = 0; id < 8; ++id) {
    auto r = gc.join(id);
    EXPECT_EQ(r.broadcast.epoch, last + 1);
    last = r.broadcast.epoch;
  }
  for (MemberId id = 0; id < 8; id += 2) {
    auto msg = gc.leave(id);
    EXPECT_EQ(msg.epoch, last + 1);
    last = msg.epoch;
  }
  EXPECT_EQ(gc.refresh().epoch, last + 1);
}

TEST(Structure, LkhLeaveEntryCountMatchesTreeDepth) {
  // With a full tree of n = 2^d members, removing one leaf refreshes d
  // path nodes; each internal path node seals toward up to 2 children,
  // the bottom one toward exactly 1 (the surviving sibling).
  crypto::HmacDrbg rng(to_bytes("depth"));
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    LkhCgkd gc(n, rng);
    for (MemberId id = 0; id < n; ++id) (void)gc.join(id);
    const auto msg = gc.leave(0);
    ByteReader r(msg.payload);
    const std::uint32_t entries = r.u32();
    const std::size_t depth = static_cast<std::size_t>(std::countr_zero(n));
    // Bottom node: 1 entry; each higher path node: 2 entries.
    EXPECT_EQ(entries, 1 + 2 * (depth - 1)) << n;
  }
}

TEST(Structure, StarRekeyListsExactlyCurrentMembers) {
  crypto::HmacDrbg rng(to_bytes("star-list"));
  StarCgkd gc(rng);
  for (MemberId id = 0; id < 6; ++id) (void)gc.join(id);
  (void)gc.leave(2);
  (void)gc.leave(4);
  const auto msg = gc.refresh();
  ByteReader r(msg.payload);
  const std::uint32_t count = r.u32();
  EXPECT_EQ(count, 4u);
  std::vector<MemberId> listed;
  for (std::uint32_t i = 0; i < count; ++i) {
    listed.push_back(r.u64());
    (void)r.bytes();
  }
  EXPECT_EQ(listed, (std::vector<MemberId>{0, 1, 3, 5}));
}

TEST(Structure, SdCoverIsDeterministic) {
  crypto::HmacDrbg rng(to_bytes("sd-det"));
  SubsetDiffCgkd gc(64, rng);
  for (MemberId id = 0; id < 40; ++id) (void)gc.join(id);
  for (MemberId id = 3; id < 40; id += 9) (void)gc.leave(id);
  const auto c1 = gc.current_cover();
  const auto c2 = gc.current_cover();
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].i, c2[i].i);
    EXPECT_EQ(c1[i].j, c2[i].j);
  }
}

TEST(Structure, SdCoverExcludesExactlyTheRevoked) {
  // Check the cover's set semantics directly against leaf arithmetic.
  crypto::HmacDrbg rng(to_bytes("sd-set"));
  const std::size_t cap = 32;
  SubsetDiffCgkd gc(cap, rng);
  std::map<MemberId, std::size_t> leaf_of;  // join order = leaf order
  for (MemberId id = 0; id < cap; ++id) {
    (void)gc.join(id);
    leaf_of[id] = cap + id;  // leaves are assigned in ascending order
  }
  std::set<std::size_t> revoked_leaves;
  for (MemberId id : {MemberId{5}, MemberId{6}, MemberId{20}}) {
    (void)gc.leave(id);
    revoked_leaves.insert(leaf_of[id]);
  }
  auto covered = [&](std::size_t leaf) {
    for (const SdSubset& s : gc.current_cover()) {
      auto is_anc = [](std::size_t anc, std::size_t node) {
        while (node > anc) node >>= 1;
        return node == anc;
      };
      if (s.j == 0) return true;
      if (is_anc(s.i, leaf) && !is_anc(s.j, leaf)) return true;
    }
    return false;
  };
  for (std::size_t leaf = cap; leaf < 2 * cap; ++leaf) {
    EXPECT_EQ(covered(leaf), !revoked_leaves.contains(leaf)) << leaf;
  }
}

}  // namespace
}  // namespace shs::cgkd
