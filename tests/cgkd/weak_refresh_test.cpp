// The strong-security ablation (paper §5 / Xu [34]): a CGKD that refreshes
// by one-way key derivation is broken — a revoked member fast-forwards
// from its last known key through every derivation-only epoch. The
// default fresh-random discipline resists the same attack.
#include <gtest/gtest.h>

#include "cgkd/lkh.h"
#include "cgkd/weak_refresh.h"
#include "crypto/drbg.h"

namespace shs::cgkd {
namespace {

TEST(WeakRefresh, BasicOperationStillWorksForHonestMembers) {
  crypto::HmacDrbg rng(to_bytes("weak-basic"));
  WeakRefreshCgkd gc(16, rng);
  auto alice = gc.join(1).member;
  auto r_bob = gc.join(2);
  ASSERT_TRUE(alice->process_rekey(r_bob.broadcast));
  auto bob = std::move(r_bob.member);
  for (int i = 0; i < 3; ++i) {
    auto msg = gc.refresh();
    ASSERT_TRUE(alice->process_rekey(msg));
    ASSERT_TRUE(bob->process_rekey(msg));
    EXPECT_EQ(alice->group_key(), gc.group_key());
    EXPECT_EQ(bob->group_key(), gc.group_key());
  }
  auto leave_msg = gc.leave(2);
  ASSERT_TRUE(alice->process_rekey(leave_msg));
  EXPECT_FALSE(bob->process_rekey(leave_msg));
  EXPECT_EQ(alice->group_key(), gc.group_key());
}

TEST(WeakRefresh, RevokedMemberFastForwardsThroughDerivedEpochs) {
  // THE ATTACK: mallory is revoked, but the group then "refreshes" its key
  // three times by derivation only. Mallory derives the same key chain
  // from her last known key — she reads everything.
  crypto::HmacDrbg rng(to_bytes("weak-attack"));
  WeakRefreshCgkd gc(16, rng);
  auto alice = gc.join(1).member;
  auto r = gc.join(2);
  ASSERT_TRUE(alice->process_rekey(r.broadcast));
  auto mallory = std::move(r.member);

  const Bytes mallory_last_key = mallory->group_key();
  ASSERT_EQ(mallory_last_key, gc.group_key());

  // Mallory is removed; the leave rekey locks her out momentarily...
  auto leave_msg = gc.leave(2);
  ASSERT_TRUE(alice->process_rekey(leave_msg));
  EXPECT_FALSE(mallory->process_rekey(leave_msg));
  const Bytes key_after_leave = gc.group_key();
  EXPECT_NE(key_after_leave, mallory_last_key);

  // ...but wait: the *leave* used fresh LKH randomness, so she cannot get
  // key_after_leave. The weakness is in refresh(): derivation-only epochs
  // following any key she DOES know are fully predictable. Simulate the
  // common misconfiguration where periodic refreshes happen while she was
  // still a member, i.e. she knows key K at epoch t and the group only
  // weak-refreshes afterwards.
  crypto::HmacDrbg rng2(to_bytes("weak-attack-2"));
  WeakRefreshCgkd gc2(16, rng2);
  auto a2 = gc2.join(1).member;
  auto r2 = gc2.join(2);
  ASSERT_TRUE(a2->process_rekey(r2.broadcast));
  auto m2 = std::move(r2.member);
  const Bytes known = m2->group_key();  // mallory's snapshot

  // Mallory "leaves the room" (stops receiving) — no revocation rekey,
  // just periodic weak refreshes, as deployed systems often do.
  (void)gc2.refresh();
  (void)gc2.refresh();
  (void)gc2.refresh();
  const Bytes attacked = WeakRefreshCgkd::derive_forward(known, 3);
  EXPECT_EQ(attacked, gc2.group_key()) << "weak refresh must be predictable";
}

TEST(WeakRefresh, StrongLkhResistsTheSameAttack) {
  // Control experiment: LKH's refresh() uses fresh randomness, so the
  // forward-derivation attack fails.
  crypto::HmacDrbg rng(to_bytes("strong-control"));
  LkhCgkd gc(16, rng);
  auto alice = gc.join(1).member;
  const Bytes known = alice->group_key();
  (void)gc.refresh();
  (void)gc.refresh();
  (void)gc.refresh();
  EXPECT_NE(WeakRefreshCgkd::derive_forward(known, 3), gc.group_key());
}

}  // namespace
}  // namespace shs::cgkd
