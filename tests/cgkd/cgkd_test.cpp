// CGKD tests, parameterized across all three schemes: rekey correctness
// under churn, forward/backward secrecy at revocation boundaries (the
// strong security of Xu [34]), replay rejection, tamper rejection, and
// scheme-specific structure (LKH message growth, SD cover size bound).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "cgkd/cgkd.h"
#include "cgkd/lkh.h"
#include "cgkd/star.h"
#include "cgkd/subset_diff.h"
#include "common/errors.h"
#include "crypto/drbg.h"

namespace shs::cgkd {
namespace {

using Factory =
    std::function<std::unique_ptr<CgkdController>(num::RandomSource&)>;

struct SchemeCase {
  std::string name;
  Factory make;
};

const SchemeCase kSchemes[] = {
    {"star", [](num::RandomSource& r) { return std::make_unique<StarCgkd>(r); }},
    {"lkh",
     [](num::RandomSource& r) { return std::make_unique<LkhCgkd>(64, r); }},
    {"sd",
     [](num::RandomSource& r) {
       return std::make_unique<SubsetDiffCgkd>(64, r);
     }},
};

class CgkdAllSchemes : public ::testing::TestWithParam<SchemeCase> {
 protected:
  CgkdAllSchemes() : rng_(to_bytes("cgkd-" + GetParam().name)) {}
  crypto::HmacDrbg rng_;
};

TEST_P(CgkdAllSchemes, JoinGivesMemberTheGroupKey) {
  auto gc = GetParam().make(rng_);
  auto r1 = gc->join(101);
  EXPECT_EQ(r1.member->group_key(), gc->group_key());
  EXPECT_EQ(r1.member->epoch(), gc->epoch());
  EXPECT_EQ(gc->member_count(), 1u);
  EXPECT_TRUE(gc->is_member(101));
  EXPECT_FALSE(gc->is_member(102));
}

TEST_P(CgkdAllSchemes, ChurnKeepsAllCurrentMembersInSync) {
  auto gc = GetParam().make(rng_);
  std::vector<std::unique_ptr<CgkdMember>> members;
  // 12 joins with everyone processing each broadcast.
  for (MemberId id = 0; id < 12; ++id) {
    auto r = gc->join(id);
    for (auto& m : members) ASSERT_TRUE(m->process_rekey(r.broadcast));
    members.push_back(std::move(r.member));
    for (auto& m : members) {
      ASSERT_EQ(m->group_key(), gc->group_key()) << "after join " << id;
    }
  }
  // Remove every third member.
  std::vector<std::unique_ptr<CgkdMember>> revoked;
  for (MemberId id = 0; id < 12; id += 3) {
    auto broadcast = gc->leave(id);
    std::vector<std::unique_ptr<CgkdMember>> still;
    for (auto& m : members) {
      if (m->id() == id) {
        EXPECT_FALSE(m->process_rekey(broadcast));
        revoked.push_back(std::move(m));
      } else {
        EXPECT_TRUE(m->process_rekey(broadcast));
        still.push_back(std::move(m));
      }
    }
    members = std::move(still);
    for (auto& m : members) EXPECT_EQ(m->group_key(), gc->group_key());
  }
  EXPECT_EQ(gc->member_count(), 8u);
}

TEST_P(CgkdAllSchemes, RevokedMemberCannotLearnLaterKeys) {
  auto gc = GetParam().make(rng_);
  auto alice = gc->join(1).member;
  auto r_bob = gc->join(2);
  ASSERT_TRUE(alice->process_rekey(r_bob.broadcast));
  auto bob = std::move(r_bob.member);

  const Bytes key_before = gc->group_key();
  auto revoke_msg = gc->leave(2);
  ASSERT_TRUE(alice->process_rekey(revoke_msg));
  EXPECT_FALSE(bob->process_rekey(revoke_msg));
  // Bob is stuck at the pre-revocation key; the group has moved on.
  EXPECT_EQ(bob->group_key(), key_before);
  EXPECT_NE(gc->group_key(), key_before);
  EXPECT_EQ(alice->group_key(), gc->group_key());

  // Bob cannot process later broadcasts either.
  auto refresh_msg = gc->refresh();
  ASSERT_TRUE(alice->process_rekey(refresh_msg));
  EXPECT_FALSE(bob->process_rekey(refresh_msg));
}

TEST_P(CgkdAllSchemes, EveryRekeyInstallsFreshKey) {
  auto gc = GetParam().make(rng_);
  auto alice = gc->join(1).member;
  Bytes last = gc->group_key();
  for (int i = 0; i < 5; ++i) {
    auto msg = gc->refresh();
    ASSERT_TRUE(alice->process_rekey(msg));
    EXPECT_NE(gc->group_key(), last);
    EXPECT_EQ(alice->group_key(), gc->group_key());
    last = gc->group_key();
  }
}

TEST_P(CgkdAllSchemes, ReplayedBroadcastRejected) {
  auto gc = GetParam().make(rng_);
  auto alice = gc->join(1).member;
  auto msg1 = gc->refresh();
  ASSERT_TRUE(alice->process_rekey(msg1));
  EXPECT_FALSE(alice->process_rekey(msg1));  // replay
  auto msg2 = gc->refresh();
  ASSERT_TRUE(alice->process_rekey(msg2));
  EXPECT_FALSE(alice->process_rekey(msg1));  // stale epoch
}

TEST_P(CgkdAllSchemes, TamperingNeverInstallsCorruptedKey) {
  // Flip every payload byte, one at a time. The AEAD layer guarantees a
  // member either rejects the broadcast or — when the flipped byte is
  // outside its own sealed entry (e.g. a framing field) — still installs
  // the *authentic* key. A corrupted key must never be accepted.
  auto gc = GetParam().make(rng_);
  auto alice = gc->join(1).member;
  std::size_t rejected = 0;
  RekeyMessage probe = gc->refresh();
  const std::size_t trials = probe.payload.size();
  ASSERT_TRUE(alice->process_rekey(probe));
  for (std::size_t i = 0; i < trials; ++i) {
    RekeyMessage msg = gc->refresh();
    RekeyMessage bad = msg;
    bad.payload[i % bad.payload.size()] ^= 0x01;
    const Bytes key_before = alice->group_key();
    if (alice->process_rekey(bad)) {
      EXPECT_EQ(alice->group_key(), gc->group_key())
          << "corrupted key installed at byte " << i;
    } else {
      ++rejected;
      EXPECT_EQ(alice->group_key(), key_before);
      EXPECT_TRUE(alice->process_rekey(msg));  // authentic copy still works
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST_P(CgkdAllSchemes, DuplicateJoinAndBadLeaveThrow) {
  auto gc = GetParam().make(rng_);
  (void)gc->join(7);
  EXPECT_THROW((void)gc->join(7), ProtocolError);
  EXPECT_THROW((void)gc->leave(8), ProtocolError);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CgkdAllSchemes,
                         ::testing::ValuesIn(kSchemes),
                         [](const auto& info) { return info.param.name; });

TEST(LkhCgkd, RekeyMessageGrowsLogarithmically) {
  crypto::HmacDrbg rng(to_bytes("lkh-size"));
  LkhCgkd small(16, rng);
  LkhCgkd large(1024, rng);
  for (MemberId id = 0; id < 16; ++id) (void)small.join(id);
  for (MemberId id = 0; id < 1024; ++id) (void)large.join(id);
  const std::size_t small_size = small.leave(3).size();
  const std::size_t large_size = large.leave(3).size();
  // 64x the members, but only ~log growth in the rekey message.
  EXPECT_LT(large_size, 4 * small_size);
}

TEST(LkhCgkd, CapacityEnforced) {
  crypto::HmacDrbg rng(to_bytes("lkh-capacity"));
  LkhCgkd gc(4, rng);
  for (MemberId id = 0; id < 4; ++id) (void)gc.join(id);
  EXPECT_THROW((void)gc.join(99), ProtocolError);
  (void)gc.leave(0);
  EXPECT_NO_THROW((void)gc.join(99));
}

TEST(SubsetDiff, CoverSizeBoundedBy2rMinus1) {
  crypto::HmacDrbg rng(to_bytes("sd-cover"));
  SubsetDiffCgkd gc(256, rng);
  for (MemberId id = 0; id < 200; ++id) (void)gc.join(id);
  EXPECT_EQ(gc.current_cover().size(), 1u);  // no revocations: "all" subset
  std::size_t r = 0;
  for (MemberId id = 0; id < 200; id += 7) {
    (void)gc.leave(id);
    ++r;
    const auto cover = gc.current_cover();
    EXPECT_LE(cover.size(), 2 * r - 1) << "r=" << r;
    EXPECT_GE(cover.size(), 1u);
  }
}

TEST(SubsetDiff, AdjacentRevocationsCompressTheCover) {
  crypto::HmacDrbg rng(to_bytes("sd-adjacent"));
  SubsetDiffCgkd gc(64, rng);
  for (MemberId id = 0; id < 64; ++id) (void)gc.join(id);
  // Revoking one full subtree of 8 adjacent leaves needs very few subsets.
  for (MemberId id = 0; id < 8; ++id) (void)gc.leave(id);
  EXPECT_LE(gc.current_cover().size(), 2u);
}

TEST(SubsetDiff, StatelessMemberSurvivesMissedEpochs) {
  // Unlike LKH, an SD receiver that misses broadcasts can still decrypt the
  // latest one — its labels never change.
  crypto::HmacDrbg rng(to_bytes("sd-stateless"));
  SubsetDiffCgkd gc(16, rng);
  auto alice = gc.join(1).member;
  (void)gc.join(2);
  (void)gc.join(3);
  (void)gc.refresh();  // alice misses all of these
  auto last = gc.refresh();
  EXPECT_TRUE(alice->process_rekey(last));
  EXPECT_EQ(alice->group_key(), gc.group_key());
}

TEST(LkhCgkd, StatefulMemberCannotSkipEpochs) {
  crypto::HmacDrbg rng(to_bytes("lkh-stateful"));
  LkhCgkd gc(16, rng);
  auto alice = gc.join(1).member;
  (void)gc.refresh();  // missed
  auto last = gc.refresh();
  EXPECT_FALSE(alice->process_rekey(last));
}

TEST(SubsetDiff, RevokedLeafIsBurned) {
  crypto::HmacDrbg rng(to_bytes("sd-burn"));
  SubsetDiffCgkd gc(4, rng);
  (void)gc.join(1);
  (void)gc.join(2);
  (void)gc.leave(1);
  // Rejoining works (fresh leaf) until leaves are exhausted.
  (void)gc.join(3);
  (void)gc.join(4);
  EXPECT_THROW((void)gc.join(5), ProtocolError);  // all 4 leaves used/burned
  EXPECT_EQ(gc.revoked_count(), 1u);
}

TEST(AllSchemes, IndependentControllersHaveIndependentKeys) {
  crypto::HmacDrbg rng1(to_bytes("indep-1"));
  crypto::HmacDrbg rng2(to_bytes("indep-2"));
  LkhCgkd a(16, rng1);
  LkhCgkd b(16, rng2);
  (void)a.join(1);
  (void)b.join(1);
  EXPECT_NE(a.group_key(), b.group_key());
}

}  // namespace
}  // namespace shs::cgkd
