// Deadline expiry is deterministic under the virtual clock: a session
// whose round is one frame short survives to exactly deadline - 1ms of
// stall, expires at the deadline, reports synthetic kTimeout outcomes,
// and rejects the late frame afterwards. Nothing about the timeout goes
// on the wire — the paper's silent-failure property is bookkeeping-only.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/errors.h"
#include "core/fixture.h"
#include "service/service.h"

namespace shs::service {
namespace {

using core::FailureReason;
using core::HandshakeOptions;
using core::testing::TestGroup;

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    TestGroup& group, std::size_t m, const HandshakeOptions& options,
    std::string_view seed) {
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(
        group.member(i).handshake_party(i, m, options, to_bytes(seed)));
  }
  return parts;
}

/// Loops frames back into the service except the ones `drop` matches,
/// which it holds aside (so the test can deliver them late).
struct FilterLoopback final : FrameSink {
  RendezvousService* service = nullptr;
  std::uint32_t drop_round = 0;
  std::uint32_t drop_position = 0;
  std::vector<Frame> held;

  void on_frame(const Frame& frame) override {
    if (frame.round == drop_round && frame.position == drop_position) {
      held.push_back(frame);
      return;
    }
    service->handle_frame(frame);
  }
};

TEST(Timeout, ExpiryIsDeterministicUnderTheVirtualClock) {
  TestGroup group("timeout", core::GroupConfig{});
  for (core::MemberId id = 1; id <= 3; ++id) group.admit(id);
  const HandshakeOptions options;
  const std::size_t m = 3;
  const std::uint32_t last = static_cast<std::uint32_t>(
      group.member(0)
          .handshake_party(0, m, options, to_bytes("probe"))
          ->total_rounds() -
      1);

  ManualClock clock;
  FilterLoopback wire;
  wire.drop_round = last;
  wire.drop_position = 1;
  ServiceOptions so;
  so.clock = &clock;
  so.egress = &wire;
  so.session_deadline = std::chrono::milliseconds(5000);
  RendezvousService svc(so);
  wire.service = &svc;

  const std::uint64_t sid =
      svc.open_session(make_parts(group, m, options, "timeout-seed"));
  svc.pump();

  // The final round is one frame short: the session is stalled, not done.
  ASSERT_EQ(svc.state(sid), SessionState::kCollecting);
  ASSERT_EQ(wire.held.size(), 1u);

  // No virtual time has passed: nothing expires.
  EXPECT_EQ(svc.expire_stalled(), 0u);

  // One tick before the deadline: still nothing.
  clock.advance(std::chrono::milliseconds(4999));
  EXPECT_EQ(svc.expire_stalled(), 0u);
  EXPECT_EQ(svc.state(sid), SessionState::kCollecting);

  // Exactly at the deadline: the session expires, deterministically.
  clock.advance(std::chrono::milliseconds(1));
  EXPECT_EQ(svc.expire_stalled(), 1u);
  EXPECT_EQ(svc.state(sid), SessionState::kExpired);
  EXPECT_EQ(svc.active_sessions(), 0u);
  EXPECT_EQ(svc.metrics().sessions_expired.load(), 1u);
  EXPECT_EQ(svc.metrics().sessions_confirmed.load(), 0u);

  // Synthetic outcomes: nobody completed, every reason is kTimeout.
  const auto outcomes = svc.outcomes(sid);
  ASSERT_EQ(outcomes.size(), m);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.completed);
    EXPECT_EQ(outcome.confirmed_count(), 0u);
    EXPECT_EQ(outcome.reason,
              std::vector<FailureReason>(m, FailureReason::kTimeout));
    EXPECT_FALSE(outcome.failure.empty());
  }

  // The late frame bounces off the finished session; a second sweep
  // finds nothing left to expire; GC succeeds.
  EXPECT_EQ(svc.handle_frame(wire.held.front()), FrameDisposition::kFinished);
  EXPECT_EQ(svc.expire_stalled(), 0u);
  EXPECT_TRUE(svc.close(sid));
}

TEST(Timeout, LateFrameBeforeTheDeadlineCompletesTheSession) {
  TestGroup group("timeout2", core::GroupConfig{});
  for (core::MemberId id = 1; id <= 2; ++id) group.admit(id);
  const HandshakeOptions options;
  const std::uint32_t last = static_cast<std::uint32_t>(
      group.member(0)
          .handshake_party(0, 2, options, to_bytes("probe"))
          ->total_rounds() -
      1);

  ManualClock clock;
  FilterLoopback wire;
  wire.drop_round = last;
  wire.drop_position = 0;
  ServiceOptions so;
  so.clock = &clock;
  so.egress = &wire;
  so.session_deadline = std::chrono::milliseconds(1000);
  RendezvousService svc(so);
  wire.service = &svc;

  const std::uint64_t sid =
      svc.open_session(make_parts(group, 2, options, "timeout-reset"));
  svc.pump();
  ASSERT_EQ(svc.state(sid), SessionState::kCollecting);

  // The frame lands one tick before the deadline: the session completes.
  clock.advance(std::chrono::milliseconds(999));
  EXPECT_EQ(svc.expire_stalled(), 0u);
  ASSERT_EQ(wire.held.size(), 1u);
  EXPECT_EQ(svc.handle_frame(wire.held.front()),
            FrameDisposition::kCompletedRound);
  svc.pump();
  EXPECT_EQ(svc.state(sid), SessionState::kDone);
  clock.advance(std::chrono::hours(1));
  EXPECT_EQ(svc.expire_stalled(), 0u);  // done sessions never expire
}

}  // namespace
}  // namespace shs::service
