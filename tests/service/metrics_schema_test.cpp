// The metrics export schema, pinned strictly: metrics_json() must be
// well-formed JSON carrying every documented key (DESIGN.md §8), each
// histogram's buckets must sum to its count, and the Prometheus
// exposition must agree with the JSON on every counter and gauge — the
// two surfaces render one snapshot and can never diverge.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fixture.h"
#include "service/service.h"
#include "support/minijson.h"

namespace shs::service {
namespace {

using core::HandshakeOptions;
using core::testing::TestGroup;
namespace minijson = shs::testing::minijson;

TestGroup& schema_group() {
  static auto* group = [] {
    auto* g = new TestGroup("schema", core::GroupConfig{});
    for (core::MemberId id = 1; id <= 4; ++id) g->admit(id);
    return g;
  }();
  return *group;
}

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    std::size_t m, std::string_view seed) {
  const HandshakeOptions options;
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(schema_group().member(i).handshake_party(
        i, m, options, to_bytes(seed)));
  }
  return parts;
}

/// Asserts the minijson histogram object shape and the bucket-sum
/// invariant; returns its count.
std::uint64_t check_histogram(const minijson::Value& h) {
  const std::uint64_t count = h.at("count").u64();
  EXPECT_NO_THROW((void)h.at("mean_us").num());
  EXPECT_NO_THROW((void)h.at("p50_us").u64());
  EXPECT_NO_THROW((void)h.at("p99_us").u64());
  const minijson::Value& buckets = h.at("buckets");
  EXPECT_EQ(buckets.type, minijson::Value::Type::kArray);
  EXPECT_EQ(buckets.array.size(), LatencyHistogram::kBuckets);
  std::uint64_t sum = 0;
  for (const minijson::Value& b : buckets.array) sum += b.u64();
  EXPECT_EQ(sum, count) << "histogram buckets must sum to count";
  return count;
}

/// The value of a `name value` sample line in a Prometheus exposition.
std::uint64_t prom_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const std::size_t at = text.find(needle);
  EXPECT_NE(at, std::string::npos) << name << " missing from exposition";
  if (at == std::string::npos) return ~std::uint64_t{0};
  return std::stoull(text.substr(at + needle.size()));
}

TEST(MetricsSchema, JsonCarriesEveryDocumentedKeyAndBucketSumsMatch) {
  RendezvousService svc;
  for (const std::size_t m : {2u, 4u}) {
    svc.open_session(make_parts(m, "schema-" + std::to_string(m)));
  }
  svc.pump();

  const std::string json = svc.metrics_json();
  minijson::Value root;
  ASSERT_NO_THROW(root = minijson::parse(json)) << json;

  const minijson::Value& sessions = root.at("sessions");
  EXPECT_EQ(sessions.at("opened").u64(), 2u);
  EXPECT_EQ(sessions.at("confirmed").u64(), 2u);
  EXPECT_EQ(sessions.at("failed").u64(), 0u);
  EXPECT_EQ(sessions.at("expired").u64(), 0u);
  EXPECT_EQ(sessions.at("active").u64(), svc.active_sessions());

  const minijson::Value& frames = root.at("frames");
  EXPECT_GT(frames.at("in").u64(), 0u);
  EXPECT_GT(frames.at("out").u64(), 0u);
  EXPECT_EQ(frames.at("rejected").u64(), 0u);
  EXPECT_GT(frames.at("bytes_in").u64(), 0u);
  EXPECT_GT(frames.at("bytes_out").u64(), 0u);

  EXPECT_GT(root.at("rounds_advanced").u64(), 0u);

  const minijson::Value& transport = root.at("transport");
  EXPECT_NO_THROW((void)transport.at("bytes_in").u64());
  EXPECT_NO_THROW((void)transport.at("bytes_out").u64());
  EXPECT_NO_THROW((void)transport.at("frames_unowned").u64());
  EXPECT_NO_THROW((void)transport.at("write_queue_hwm_bytes").u64());
  EXPECT_EQ(transport.at("handoff_in").u64(), 0u) << "loopback has no shards";
  EXPECT_EQ(transport.at("handoff_out").u64(), 0u);
  const minijson::Value& conns = transport.at("connections");
  EXPECT_NO_THROW((void)conns.at("accepted").u64());
  EXPECT_NO_THROW((void)conns.at("closed").u64());
  EXPECT_NO_THROW((void)conns.at("killed_backpressure").u64());
  EXPECT_NO_THROW((void)conns.at("active").u64());

  // Batched verification is default-on, so the counters must be live:
  // every enqueue either created a unique check or coalesced with one.
  const minijson::Value& batch = root.at("batch");
  const std::uint64_t jobs = batch.at("jobs").u64();
  const std::uint64_t checks = batch.at("checks").u64();
  EXPECT_GT(jobs, 0u);
  EXPECT_GT(checks, 0u);
  EXPECT_EQ(jobs, checks + batch.at("deduped").u64());
  EXPECT_EQ(batch.at("rejected").u64(), 0u);
  const minijson::Value& flushes = batch.at("flushes");
  EXPECT_GT(flushes.at("total").u64(), 0u);
  EXPECT_NO_THROW((void)flushes.at("size").u64());
  EXPECT_NO_THROW((void)flushes.at("deadline").u64());
  EXPECT_EQ(batch.at("bisections").u64(), 0u) << "honest batch must fold";
  EXPECT_EQ(batch.at("individual").u64(), 0u);
  EXPECT_GT(batch.at("max_size").u64(), 0u);
  EXPECT_LE(batch.at("max_size").u64(), checks);

  // The channel block is present (zeroed: no relay runs in a bare
  // service) and strictly keyed.
  const minijson::Value& channel = root.at("channel");
  EXPECT_EQ(channel.at("opened").u64(), 0u);
  EXPECT_EQ(channel.at("closed").u64(), 0u);
  EXPECT_EQ(channel.at("active").u64(), 0u);
  EXPECT_EQ(channel.at("attaches").u64(), 0u);
  EXPECT_EQ(channel.at("records_in").u64(), 0u);
  EXPECT_EQ(channel.at("records_relayed").u64(), 0u);
  EXPECT_EQ(channel.at("bytes_in").u64(), 0u);
  EXPECT_EQ(channel.at("bytes_relayed").u64(), 0u);
  EXPECT_EQ(channel.at("records_unowned").u64(), 0u);
  EXPECT_EQ(channel.at("rekeys").u64(), 0u);

  // The authority block is likewise present and strictly keyed (zeroed:
  // a bare service hosts no group authority).
  const minijson::Value& auth = root.at("authority");
  EXPECT_EQ(auth.at("members").u64(), 0u);
  EXPECT_EQ(auth.at("epoch").u64(), 0u);
  EXPECT_EQ(auth.at("subscribers").u64(), 0u);
  EXPECT_EQ(auth.at("rekeys").u64(), 0u);
  EXPECT_EQ(auth.at("rekey_bytes").u64(), 0u);
  EXPECT_EQ(auth.at("rekeys_relayed").u64(), 0u);
  EXPECT_EQ(auth.at("rekey_bytes_relayed").u64(), 0u);
  EXPECT_EQ(auth.at("subscribes").u64(), 0u);
  EXPECT_EQ(auth.at("syncs").u64(), 0u);
  EXPECT_EQ(auth.at("rejects").u64(), 0u);

  const minijson::Value& precomp = root.at("precomp");
  EXPECT_GT(precomp.at("tables").u64(), 0u);
  EXPECT_NO_THROW((void)precomp.at("hits").u64());
  EXPECT_NO_THROW((void)precomp.at("misses").u64());

  const minijson::Value& latency = root.at("latency");
  EXPECT_EQ(check_histogram(latency.at("phase1")), 2u);
  EXPECT_EQ(check_histogram(latency.at("phase2")), 2u);
  EXPECT_EQ(check_histogram(latency.at("phase3")), 2u);
  EXPECT_EQ(check_histogram(latency.at("session")), 2u);
}

TEST(MetricsSchema, PrometheusExpositionAgreesWithTheJson) {
  RendezvousService svc;
  svc.open_session(make_parts(2, "schema-prom"));
  svc.pump();

  const minijson::Value root = minijson::parse(svc.metrics_json());
  const std::string prom = svc.metrics_prometheus();

  EXPECT_EQ(prom_value(prom, "shs_sessions_opened_total"),
            root.at("sessions").at("opened").u64());
  EXPECT_EQ(prom_value(prom, "shs_sessions_confirmed_total"),
            root.at("sessions").at("confirmed").u64());
  EXPECT_EQ(prom_value(prom, "shs_sessions_active"),
            root.at("sessions").at("active").u64());
  EXPECT_EQ(prom_value(prom, "shs_frames_in_total"),
            root.at("frames").at("in").u64());
  EXPECT_EQ(prom_value(prom, "shs_rounds_advanced_total"),
            root.at("rounds_advanced").u64());
  EXPECT_EQ(prom_value(prom, "shs_connections_active"),
            root.at("transport").at("connections").at("active").u64());
  EXPECT_EQ(prom_value(prom, "shs_frames_handoff_in_total"),
            root.at("transport").at("handoff_in").u64());
  EXPECT_EQ(prom_value(prom, "shs_frames_handoff_out_total"),
            root.at("transport").at("handoff_out").u64());
  EXPECT_EQ(prom_value(prom, "shs_batch_jobs_total"),
            root.at("batch").at("jobs").u64());
  EXPECT_EQ(prom_value(prom, "shs_batch_jobs_deduped_total"),
            root.at("batch").at("deduped").u64());
  EXPECT_EQ(prom_value(prom, "shs_batch_flushes_total"),
            root.at("batch").at("flushes").at("total").u64());
  EXPECT_EQ(prom_value(prom, "shs_batch_checks_total"),
            root.at("batch").at("checks").u64());
  EXPECT_EQ(prom_value(prom, "shs_batch_max_size"),
            root.at("batch").at("max_size").u64());
  EXPECT_EQ(prom_value(prom, "shs_precomp_tables"),
            root.at("precomp").at("tables").u64());
  EXPECT_EQ(prom_value(prom, "shs_channels_opened_total"),
            root.at("channel").at("opened").u64());
  EXPECT_EQ(prom_value(prom, "shs_channels_open"),
            root.at("channel").at("active").u64());
  EXPECT_EQ(prom_value(prom, "shs_channel_records_in_total"),
            root.at("channel").at("records_in").u64());
  EXPECT_EQ(prom_value(prom, "shs_channel_rekeys_total"),
            root.at("channel").at("rekeys").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_members"),
            root.at("authority").at("members").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_epoch"),
            root.at("authority").at("epoch").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_subscribers"),
            root.at("authority").at("subscribers").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_rekeys_total"),
            root.at("authority").at("rekeys").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_rekey_bytes_total"),
            root.at("authority").at("rekey_bytes").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_subscribes_total"),
            root.at("authority").at("subscribes").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_syncs_total"),
            root.at("authority").at("syncs").u64());
  EXPECT_EQ(prom_value(prom, "shs_authority_rejects_total"),
            root.at("authority").at("rejects").u64());

  // Histogram invariants: cumulative buckets end at count; sum present.
  const std::uint64_t count =
      prom_value(prom, "shs_session_latency_us_count");
  EXPECT_EQ(count, root.at("latency").at("session").at("count").u64());
  const std::string inf = "shs_session_latency_us_bucket{le=\"+Inf\"} ";
  const std::size_t at = prom.find(inf);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(std::stoull(prom.substr(at + inf.size())), count);
  EXPECT_NE(prom.find("shs_session_latency_us_sum "), std::string::npos);

  // Cumulative buckets never decrease.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  const std::string bucket = "shs_session_latency_us_bucket{le=";
  while ((pos = prom.find(bucket, pos)) != std::string::npos) {
    const std::size_t close = prom.find("} ", pos);
    ASSERT_NE(close, std::string::npos);
    const std::uint64_t v = std::stoull(prom.substr(close + 2));
    EXPECT_GE(v, prev);
    prev = v;
    pos = close;
  }
  EXPECT_EQ(prev, count);
}

TEST(MetricsSchema, HistogramMergeAndResetFoldShards) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(std::chrono::microseconds(3));
  a.record(std::chrono::microseconds(900));
  b.record(std::chrono::microseconds(40));

  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum_us(), 943u);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    sum += a.bucket_count(i);
  }
  EXPECT_EQ(sum, 3u);
  EXPECT_EQ(b.count(), 1u) << "merge must not disturb the source";

  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum_us(), 0u);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), 0u);
  }
}

TEST(MetricsSchema, MergeFromFoldsCountersMaxesAndHistograms) {
  ServiceMetrics a;
  ServiceMetrics b;
  a.sessions_opened = 3;
  b.sessions_opened = 4;
  a.frames_handoff_in = 1;
  b.frames_handoff_out = 2;
  a.write_queue_hwm = 100;
  b.write_queue_hwm = 250;  // high-water marks take the max, not the sum
  a.batch_max_size = 9;
  b.batch_max_size = 5;
  a.session_latency.record(std::chrono::microseconds(10));
  b.session_latency.record(std::chrono::microseconds(20));
  a.authority_rekeys = 2;
  b.authority_rekeys = 5;
  b.authority_rekey_bytes_relayed = 64;

  a.merge_from(b);
  EXPECT_EQ(a.sessions_opened.load(), 7u);
  EXPECT_EQ(a.authority_rekeys.load(), 7u);
  EXPECT_EQ(a.authority_rekey_bytes_relayed.load(), 64u);
  EXPECT_EQ(a.frames_handoff_in.load(), 1u);
  EXPECT_EQ(a.frames_handoff_out.load(), 2u);
  EXPECT_EQ(a.write_queue_hwm.load(), 250u);
  EXPECT_EQ(a.batch_max_size.load(), 9u);
  EXPECT_EQ(a.session_latency.count(), 2u);
  EXPECT_EQ(b.sessions_opened.load(), 4u) << "source must be untouched";
}

TEST(MetricsSchema, LabeledEntriesShareOneHelpTypeBlock) {
  obs::MetricsSnapshot s;
  s.scalars.push_back({"shs_shard_active_sessions", "Per-shard sessions",
                       /*gauge=*/true, 5, "shard=\"0\""});
  s.scalars.push_back({"shs_shard_active_sessions", "Per-shard sessions",
                       /*gauge=*/true, 7, "shard=\"1\""});
  const std::string text = obs::prometheus_text(s);
  EXPECT_NE(text.find("shs_shard_active_sessions{shard=\"0\"} 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("shs_shard_active_sessions{shard=\"1\"} 7\n"),
            std::string::npos);
  // HELP/TYPE rendered once for the pair: valid 0.0.4 exposition.
  std::size_t helps = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# HELP shs_shard_active_sessions", pos)) !=
         std::string::npos) {
    ++helps;
    ++pos;
  }
  EXPECT_EQ(helps, 1u);
}

}  // namespace
}  // namespace shs::service
