// The ctest `stress`-labeled soak: one RendezvousService drives
// SHS_STRESS_SESSIONS (default 1000) concurrent sessions of mixed size
// (m = 2/4/8) and mixed scheme under a seeded drop+tamper fault schedule,
// with frames fed back by concurrent feeder threads racing a concurrent
// pump thread and a reaper polling expiry and metrics — the topology the
// TSan tree (tools/check.sh --service) exercises for data races.
//
// The oracle is exact, not statistical: the fault library keys every
// decision on a hash of (seed, round, sender, receiver), so a fresh,
// identically-seeded stack replays the service's schedule in a serial
// run_handshake of the same participants. Every session must match its
// serial twin byte-for-byte, and no cross-group position may ever be
// confirmed (zero false accepts).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/fixture.h"
#include "net/faults.h"
#include "service/service.h"

namespace shs::service {
namespace {

using core::HandshakeOptions;
using core::HandshakeOutcome;
using core::Member;
using core::testing::TestGroup;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

constexpr std::uint64_t kDropSeed = 0xd20b;
constexpr std::uint64_t kTamperSeed = 0x7a3b;

/// The soak's fault schedule; built fresh per driver so the service and
/// each serial twin replay identical decisions. Only stateless (purely
/// seed-hashed) faults qualify — a stateful fault would couple sessions.
struct FaultStack {
  net::DropFault drop{kDropSeed, {.per_message = 0.02}};
  net::TamperFault tamper{kTamperSeed, {.probability = 0.02}};
  net::ChainAdversary chain{{&drop, &tamper}};
};

struct SessionPlan {
  std::vector<const Member*> members;
  std::vector<bool> in_group_a;
  HandshakeOptions options;
  std::string seed;
};

/// Thread-safe frame queue standing in for the transport.
struct QueueSink final : FrameSink {
  std::mutex mu;
  std::vector<Frame> frames;
  void on_frame(const Frame& frame) override {
    const std::lock_guard<std::mutex> lock(mu);
    frames.push_back(frame);
  }
};

TEST(Stress, ThousandSessionSoakMatchesSerialTwinsExactly) {
  const std::size_t sessions = env_size("SHS_STRESS_SESSIONS", 1000);
  const std::size_t pool_threads = env_size("SHS_STRESS_THREADS", 4);
  const std::size_t feeders = 2;

  TestGroup group_a("soak-a", core::GroupConfig{});
  TestGroup group_b("soak-b", core::GroupConfig{});
  for (core::MemberId id = 1; id <= 8; ++id) {
    group_a.admit(id);
    group_b.admit(100 + id);
  }

  constexpr std::size_t kSizes[] = {2, 4, 2, 8};  // mean m = 4
  std::vector<SessionPlan> plans;
  plans.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    SessionPlan plan;
    const std::size_t m = kSizes[s % 4];
    const bool mixed = s % 5 == 4;
    plan.options.self_distinction = s % 3 == 0;  // scheme 2
    plan.seed = "soak-" + std::to_string(s);
    for (std::size_t i = 0; i < m; ++i) {
      const bool in_a = !mixed || i % 2 == 0;
      plan.members.push_back(in_a ? &group_a.member(i) : &group_b.member(i));
      plan.in_group_a.push_back(in_a);
    }
    plans.push_back(std::move(plan));
  }

  FaultStack service_faults;
  QueueSink wire;
  ServiceOptions so;
  so.threads = pool_threads;
  so.adversary = &service_faults.chain;
  so.egress = &wire;
  so.session_deadline = std::chrono::minutes(10);  // soak must not expire
  RendezvousService svc(so);

  std::vector<std::uint64_t> sids;
  sids.reserve(sessions);
  for (const SessionPlan& plan : plans) {
    std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
    parts.reserve(plan.members.size());
    for (std::size_t i = 0; i < plan.members.size(); ++i) {
      parts.push_back(plan.members[i]->handshake_party(
          i, plan.members.size(), plan.options, to_bytes(plan.seed)));
    }
    sids.push_back(svc.open_session(std::move(parts)));
  }
  ASSERT_EQ(svc.active_sessions(), sessions);

  // Concurrent topology: feeders race each other for queued frames and
  // race the pump thread slotting them, while the reaper exercises the
  // read paths (expiry sweep, metrics export) mid-flight.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::size_t f = 0; f < feeders; ++f) {
    workers.emplace_back([&, f] {
      std::mt19937_64 rng(0xfeed + f);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<Frame> batch;
        {
          const std::lock_guard<std::mutex> lock(wire.mu);
          // Take a random half so the two feeders interleave sessions.
          const std::size_t take =
              wire.frames.size() <= 1 ? wire.frames.size()
                                      : 1 + rng() % wire.frames.size();
          batch.assign(std::make_move_iterator(wire.frames.end() - take),
                       std::make_move_iterator(wire.frames.end()));
          wire.frames.resize(wire.frames.size() - take);
        }
        if (batch.empty()) {
          std::this_thread::yield();
          continue;
        }
        std::shuffle(batch.begin(), batch.end(), rng);
        for (Frame& frame : batch) svc.handle_frame(std::move(frame));
      }
    });
  }
  workers.emplace_back([&] {  // pump
    while (!stop.load(std::memory_order_relaxed)) {
      if (svc.pump() == 0) std::this_thread::yield();
    }
  });
  workers.emplace_back([&] {  // reaper / metrics reader
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_EQ(svc.expire_stalled(), 0u);
      (void)svc.metrics_json();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const auto soak_deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(15);
  while (svc.active_sessions() != 0 &&
         std::chrono::steady_clock::now() < soak_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& t : workers) t.join();
  ASSERT_EQ(svc.active_sessions(), 0u) << "soak stalled; metrics:\n"
                                       << svc.metrics_json();

  EXPECT_EQ(svc.metrics().sessions_opened.load(), sessions);
  EXPECT_EQ(svc.metrics().sessions_confirmed.load() +
                svc.metrics().sessions_failed.load(),
            sessions);
  EXPECT_EQ(svc.metrics().sessions_expired.load(), 0u);

  // Exact per-session oracle: a fresh, identically-seeded fault stack in
  // the serial driver replays the service's schedule.
  std::size_t confirmed = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    SCOPED_TRACE("session " + std::to_string(s) + " (m=" +
                 std::to_string(plans[s].members.size()) + ")");
    ASSERT_EQ(svc.state(sids[s]), SessionState::kDone);
    FaultStack twin_faults;
    const auto want = core::testing::handshake(
        plans[s].members, plans[s].options, plans[s].seed, &twin_faults.chain);
    const auto got = svc.outcomes(sids[s]);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].completed, want[i].completed) << "position " << i;
      ASSERT_EQ(got[i].partner, want[i].partner) << "position " << i;
      ASSERT_EQ(got[i].session_key, want[i].session_key) << "position " << i;
      ASSERT_EQ(got[i].reason, want[i].reason) << "position " << i;
      ASSERT_EQ(got[i].transcript.serialize(), want[i].transcript.serialize())
          << "position " << i;
      for (std::size_t j = 0; j < got[i].partner.size(); ++j) {
        if (got[i].partner[j]) {
          ASSERT_EQ(plans[s].in_group_a[i], plans[s].in_group_a[j])
              << "false accept: cross-group position " << j;
        }
      }
      confirmed += got[i].confirmed_count() >= 2 ? 1 : 0;
    }
    ASSERT_TRUE(svc.close(sids[s]));
  }
  // The 2% fault rates leave plenty of participants confirming a clique;
  // a collapse here means the service diverged from the protocol. (The
  // exact figure is pinned by the per-session twin comparison above.)
  EXPECT_GT(confirmed, sessions / 2);
  RecordProperty("confirmed_participants", static_cast<int>(confirmed));
}

}  // namespace
}  // namespace shs::service
