// Service-level batched-verification tests: a batched RendezvousService
// must be frame-for-frame and outcome-for-outcome identical to an
// unbatched one (deferral is invisible outside latency), the deadline
// flush must be deterministic under ManualClock, a forged signature
// inside a hosted batch must be isolated without collateral rejects, and
// the fold coefficients must register with the redaction audit and stay
// off every export surface.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/errors.h"
#include "core/fixture.h"
#include "gsig/acjt.h"
#include "obs/redact.h"
#include "service/batch_verify.h"
#include "service/service.h"

namespace shs::service {
namespace {

using core::HandshakeOptions;
using core::HandshakeOutcome;
using core::testing::TestGroup;

TestGroup& batch_group() {
  static auto* group = [] {
    auto* g = new TestGroup("batchsvc", core::GroupConfig{});
    for (core::MemberId id = 1; id <= 8; ++id) g->admit(id);
    return g;
  }();
  return *group;
}

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    std::size_t m, std::string_view seed) {
  const HandshakeOptions options;
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  parts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(batch_group().member(i).handshake_party(
        i, m, options, to_bytes(seed)));
  }
  return parts;
}

/// Records every egress frame, then loops it back into the service.
struct TeeLoopback final : FrameSink {
  RendezvousService* service = nullptr;
  std::mutex mu;
  std::vector<Frame> frames;
  void on_frame(const Frame& frame) override {
    {
      const std::lock_guard<std::mutex> lock(mu);
      frames.push_back(frame);
    }
    service->handle_frame(frame);
  }
};

/// Runs one full m-party session; returns (egress frames, outcomes).
std::pair<std::vector<Frame>, std::vector<HandshakeOutcome>> run_hosted(
    std::size_t m, std::string_view seed, bool batch_verify,
    std::size_t threads = 1) {
  TeeLoopback wire;
  ServiceOptions so;
  so.threads = threads;
  so.egress = &wire;
  so.batch_verify = batch_verify;
  so.batch_seed = to_bytes("batch-service-test");
  RendezvousService svc(so);
  wire.service = &svc;
  const std::uint64_t sid = svc.open_session(make_parts(m, seed));
  svc.pump();
  EXPECT_EQ(svc.state(sid), SessionState::kDone);
  auto outcomes = svc.outcomes(sid);
  EXPECT_TRUE(svc.close(sid));
  return {std::move(wire.frames), std::move(outcomes)};
}

TEST(BatchService, BatchedRunIsFrameIdenticalToUnbatched) {
  for (const std::size_t m : {2u, 4u, 8u}) {
    SCOPED_TRACE("m=" + std::to_string(m));
    const std::string seed = "tee-" + std::to_string(m);
    auto [inline_frames, inline_outcomes] =
        run_hosted(m, seed, /*batch_verify=*/false);
    auto [batched_frames, batched_outcomes] =
        run_hosted(m, seed, /*batch_verify=*/true);

    ASSERT_EQ(inline_frames.size(), batched_frames.size());
    for (std::size_t i = 0; i < inline_frames.size(); ++i) {
      EXPECT_EQ(inline_frames[i].session_id, batched_frames[i].session_id);
      EXPECT_EQ(inline_frames[i].round, batched_frames[i].round);
      EXPECT_EQ(inline_frames[i].position, batched_frames[i].position);
      EXPECT_EQ(inline_frames[i].payload, batched_frames[i].payload)
          << "frame " << i << ": deferral leaked onto the wire";
    }
    ASSERT_EQ(inline_outcomes.size(), batched_outcomes.size());
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(inline_outcomes[i].partner, batched_outcomes[i].partner);
      EXPECT_EQ(inline_outcomes[i].session_key,
                batched_outcomes[i].session_key);
      EXPECT_EQ(inline_outcomes[i].reason, batched_outcomes[i].reason);
      EXPECT_TRUE(batched_outcomes[i].full_success);
    }
  }
}

TEST(BatchService, ThreadedPumpMatchesSerialWithBatching) {
  const std::string seed = "tee-mt";
  auto [serial_frames, serial_outcomes] =
      run_hosted(8, seed, /*batch_verify=*/true, /*threads=*/1);
  auto [pooled_frames, pooled_outcomes] =
      run_hosted(8, seed, /*batch_verify=*/true, /*threads=*/4);
  ASSERT_EQ(serial_outcomes.size(), pooled_outcomes.size());
  for (std::size_t i = 0; i < serial_outcomes.size(); ++i) {
    EXPECT_EQ(serial_outcomes[i].partner, pooled_outcomes[i].partner);
    EXPECT_EQ(serial_outcomes[i].session_key,
              pooled_outcomes[i].session_key);
  }
  EXPECT_EQ(serial_frames.size(), pooled_frames.size());
}

TEST(BatchService, DeadlineFlushIsDeterministicUnderManualClock) {
  crypto::HmacDrbg rng(to_bytes("deadline-test"));
  auto scheme = gsig::AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(1, rng);
  const Bytes msg = to_bytes("deadline message");
  const Bytes sig = scheme->sign(alice, msg, {}, rng);

  ManualClock clock;
  ServiceMetrics metrics;
  BatchVerifierOptions options;
  options.max_pending = 64;  // far away: only the deadline can flush
  options.max_delay = std::chrono::milliseconds(5);
  options.clock = &clock;
  options.seed = to_bytes("deadline-seed");
  options.metrics = &metrics;
  BatchVerifier batch(std::move(options));

  int verdicts = 0;
  bool accepted = false;
  batch.enqueue(*scheme, msg, sig, {}, [&](bool ok) {
    ++verdicts;
    accepted = ok;
  });
  EXPECT_EQ(batch.pending(), 1u);
  EXPECT_FALSE(batch.poll()) << "deadline not reached: no flush";
  clock.advance(std::chrono::milliseconds(4));
  EXPECT_FALSE(batch.poll()) << "4ms < 5ms budget";
  EXPECT_EQ(verdicts, 0);

  clock.advance(std::chrono::milliseconds(1));
  EXPECT_TRUE(batch.poll()) << "exactly at the deadline: must flush";
  EXPECT_EQ(batch.pending(), 0u);
  EXPECT_EQ(verdicts, 1);
  EXPECT_TRUE(accepted);
  EXPECT_FALSE(batch.poll()) << "nothing pending";
  EXPECT_EQ(metrics.batch_flushes_deadline.load(), 1u);
  EXPECT_EQ(metrics.batch_flushes_size.load(), 0u);
}

TEST(BatchService, SizeThresholdFlushesFromEnqueue) {
  crypto::HmacDrbg rng(to_bytes("size-test"));
  auto scheme = gsig::AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(1, rng);

  ServiceMetrics metrics;
  BatchVerifierOptions options;
  options.max_pending = 3;
  options.seed = to_bytes("size-seed");
  options.metrics = &metrics;
  BatchVerifier batch(std::move(options));

  int verdicts = 0;
  for (int i = 0; i < 3; ++i) {
    const Bytes msg = to_bytes("size message " + std::to_string(i));
    batch.enqueue(*scheme, msg, scheme->sign(alice, msg, {}, rng), {},
                  [&](bool ok) {
                    ++verdicts;
                    EXPECT_TRUE(ok);
                  });
  }
  EXPECT_EQ(verdicts, 3) << "third enqueue hit max_pending and flushed";
  EXPECT_EQ(batch.pending(), 0u);
  EXPECT_EQ(metrics.batch_flushes_size.load(), 1u);
  EXPECT_EQ(metrics.batch_max_size.load(), 3u);
}

TEST(BatchService, ForgedJobIsIsolatedInsideTheServiceBatch) {
  crypto::HmacDrbg rng(to_bytes("forge-test"));
  auto scheme = gsig::AcjtGsig::create(algebra::ParamLevel::kTest, rng);
  auto alice = scheme->admit(1, rng);

  ServiceMetrics metrics;
  BatchVerifierOptions options;
  options.seed = to_bytes("forge-seed");
  options.metrics = &metrics;
  BatchVerifier batch(std::move(options));

  // Five honest jobs plus one response-tampered signature that passes
  // every cheap check (the Fiat-Shamir hash covers commitments, not
  // responses), so it can only die inside the fold.
  std::vector<bool> results(6, false);
  std::vector<bool> fired(6, false);
  for (std::size_t i = 0; i < 6; ++i) {
    const Bytes msg = to_bytes("forge message " + std::to_string(i));
    Bytes sig = scheme->sign(alice, msg, {}, rng);
    if (i == 2) {
      for (std::size_t back = 1; back <= sig.size(); ++back) {
        Bytes t = sig;
        t[t.size() - back] ^= 0x01;
        try {
          auto check = scheme->prepare_verify(msg, t, {});
          if (check.has_value() && !gsig::sigma_check(*check)) {
            sig = std::move(t);
            break;
          }
        } catch (const Error&) {
        }
      }
    }
    batch.enqueue(*scheme, msg, sig, {}, [&results, &fired, i](bool ok) {
      results[i] = ok;
      fired[i] = true;
    });
  }
  batch.flush();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(fired[i]) << "job " << i << " never resolved";
    EXPECT_EQ(results[i], i != 2)
        << "job " << i << ": bisection must isolate exactly the forgery";
  }
  EXPECT_GE(metrics.batch_bisections.load(), 1u);
  EXPECT_EQ(metrics.batch_jobs_rejected.load(), 1u);
}

TEST(BatchService, FoldCoefficientsRegisterWithTheRedactionAudit) {
  obs::RedactionAudit& audit = obs::RedactionAudit::instance();
  audit.reset();
  audit.enable(true);

  TeeLoopback wire;
  ServiceOptions so;
  so.egress = &wire;
  so.batch_seed = to_bytes("audit-seed");
  RendezvousService svc(so);
  wire.service = &svc;
  const std::uint64_t sid = svc.open_session(make_parts(4, "audit"));
  svc.pump();
  EXPECT_EQ(svc.state(sid), SessionState::kDone);

  EXPECT_GT(audit.secret_count(), 0u)
      << "no fold coefficient ever registered";
  obs::audit_output(svc.metrics_json(), "metrics_json");
  obs::audit_output(svc.metrics_prometheus(), "metrics_prom");
  EXPECT_EQ(audit.violations(), 0u)
      << "a batch scalar leaked into an export surface";

  audit.reset();
  audit.enable(false);
}

}  // namespace
}  // namespace shs::service
