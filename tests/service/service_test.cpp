// RendezvousService correctness: hosted sessions driven through the
// framed wire produce outcomes byte-identical to the serial net driver —
// session key, partner sets, per-position reasons and the serialized
// transcript — with or without a seeded fault schedule; frame
// dispositions, injected forgeries, deadline expiry under a virtual
// clock, the stream feed() path and the metrics export are each pinned.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/errors.h"
#include "core/fixture.h"
#include "net/faults.h"
#include "service/service.h"

namespace shs::service {
namespace {

using core::FailureReason;
using core::HandshakeOptions;
using core::HandshakeOutcome;
using core::testing::TestGroup;

TestGroup& svc_group() {
  static TestGroup* group = [] {
    auto* g = new TestGroup("svc", core::GroupConfig{});
    for (core::MemberId id = 1; id <= 8; ++id) g->admit(id);
    return g;
  }();
  return *group;
}

std::vector<std::unique_ptr<core::HandshakeParticipant>> make_parts(
    TestGroup& group, std::size_t m, const HandshakeOptions& options,
    std::string_view seed) {
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  parts.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(
        group.member(i).handshake_party(i, m, options, to_bytes(seed)));
  }
  return parts;
}

std::vector<HandshakeOutcome> serial_twin(TestGroup& group, std::size_t m,
                                          const HandshakeOptions& options,
                                          std::string_view seed,
                                          net::Adversary* adversary = nullptr) {
  std::vector<const core::Member*> members;
  members.reserve(m);
  for (std::size_t i = 0; i < m; ++i) members.push_back(&group.member(i));
  return core::testing::handshake(members, options, seed, adversary);
}

void expect_outcomes_equal(const std::vector<HandshakeOutcome>& got,
                           const std::vector<HandshakeOutcome>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("position " + std::to_string(i));
    EXPECT_EQ(got[i].completed, want[i].completed);
    EXPECT_EQ(got[i].partner, want[i].partner);
    EXPECT_EQ(got[i].full_success, want[i].full_success);
    EXPECT_EQ(got[i].self_distinction_violated,
              want[i].self_distinction_violated);
    EXPECT_EQ(got[i].session_key, want[i].session_key);
    EXPECT_EQ(got[i].failure, want[i].failure);
    EXPECT_EQ(got[i].reason, want[i].reason);
    EXPECT_EQ(got[i].transcript.serialize(), want[i].transcript.serialize());
  }
}

std::size_t rounds_of(TestGroup& group, std::size_t m,
                      const HandshakeOptions& options) {
  return group.member(0)
      .handshake_party(0, m, options, to_bytes("probe"))
      ->total_rounds();
}

/// Collects emitted frames instead of looping them back.
struct QueueSink final : FrameSink {
  std::mutex mu;
  std::vector<Frame> frames;
  void on_frame(const Frame& frame) override {
    const std::lock_guard<std::mutex> lock(mu);
    frames.push_back(frame);
  }
};

TEST(RendezvousService, HostedLoopbackMatchesSerialDriver) {
  TestGroup& group = svc_group();
  const HandshakeOptions options;
  const std::size_t m = 4;
  const auto want = serial_twin(group, m, options, "svc-loopback");

  RendezvousService svc;
  const std::uint64_t sid =
      svc.open_session(make_parts(group, m, options, "svc-loopback"));
  EXPECT_EQ(svc.active_sessions(), 1u);
  EXPECT_THROW((void)svc.outcomes(sid), ProtocolError);

  svc.pump();

  ASSERT_EQ(svc.state(sid), SessionState::kDone);
  EXPECT_EQ(svc.active_sessions(), 0u);
  expect_outcomes_equal(svc.outcomes(sid), want);
  EXPECT_TRUE(want.front().full_success);  // same group: everyone confirms

  const std::size_t rounds = rounds_of(group, m, options);
  const ServiceMetrics& metrics = svc.metrics();
  EXPECT_EQ(metrics.sessions_opened.load(), 1u);
  EXPECT_EQ(metrics.sessions_confirmed.load(), 1u);
  EXPECT_EQ(metrics.sessions_failed.load(), 0u);
  EXPECT_EQ(metrics.sessions_expired.load(), 0u);
  EXPECT_EQ(metrics.rounds_advanced.load(), rounds);
  EXPECT_EQ(metrics.frames_out.load(), rounds * m);
  EXPECT_EQ(metrics.frames_in.load(), rounds * m);
  EXPECT_EQ(metrics.frames_rejected.load(), 0u);

  EXPECT_TRUE(svc.close(sid));
  EXPECT_FALSE(svc.close(sid));
  EXPECT_THROW((void)svc.outcomes(sid), ProtocolError);
}

TEST(RendezvousService, OptionVariantsMatchSerialDriver) {
  TestGroup& group = svc_group();
  HandshakeOptions phases_only;
  phases_only.traceable = false;
  HandshakeOptions scheme2;
  scheme2.self_distinction = true;

  for (const auto& [label, options] :
       {std::pair<const char*, HandshakeOptions>{"phases12", phases_only},
        {"scheme2", scheme2}}) {
    SCOPED_TRACE(label);
    const std::string seed = std::string("svc-variant-") + label;
    const auto want = serial_twin(group, 3, options, seed);

    RendezvousService svc;
    const std::uint64_t sid =
        svc.open_session(make_parts(group, 3, options, seed));
    svc.pump();
    ASSERT_EQ(svc.state(sid), SessionState::kDone);
    expect_outcomes_equal(svc.outcomes(sid), want);
  }
}

TEST(RendezvousService, PooledPumpMatchesSerialDriver) {
  TestGroup& group = svc_group();
  const HandshakeOptions options;
  ServiceOptions so;
  so.threads = 4;
  RendezvousService svc(so);

  std::vector<std::uint64_t> sids;
  std::vector<std::vector<HandshakeOutcome>> wants;
  for (std::size_t s = 0; s < 8; ++s) {
    const std::size_t m = s % 2 == 0 ? 2 : 4;
    const std::string seed = "svc-pool-" + std::to_string(s);
    wants.push_back(serial_twin(group, m, options, seed));
    sids.push_back(svc.open_session(make_parts(group, m, options, seed)));
  }
  svc.pump();
  for (std::size_t s = 0; s < sids.size(); ++s) {
    SCOPED_TRACE("session " + std::to_string(s));
    ASSERT_EQ(svc.state(sids[s]), SessionState::kDone);
    expect_outcomes_equal(svc.outcomes(sids[s]), wants[s]);
  }
  EXPECT_EQ(svc.metrics().sessions_confirmed.load(), sids.size());
}

TEST(RendezvousService, SeededFaultScheduleMatchesSerialDriver) {
  TestGroup& group = svc_group();
  const HandshakeOptions options;
  const std::size_t m = 4;

  for (std::uint64_t seed : {11u, 22u, 33u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const std::string session_seed = "svc-fault-" + std::to_string(seed);

    // Two identically-seeded fault stacks: decisions are hashed on
    // (seed, round, sender, receiver), so the serial driver and the
    // service replay the same schedule.
    net::DropFault serial_drop(seed, {.per_message = 0.2});
    net::TamperFault serial_tamper(seed ^ 0x7a, {.probability = 0.2});
    net::ChainAdversary serial_chain({&serial_drop, &serial_tamper});
    const auto want =
        serial_twin(group, m, options, session_seed, &serial_chain);

    net::DropFault drop(seed, {.per_message = 0.2});
    net::TamperFault tamper(seed ^ 0x7a, {.probability = 0.2});
    net::ChainAdversary chain({&drop, &tamper});
    ServiceOptions so;
    so.adversary = &chain;
    RendezvousService svc(so);
    const std::uint64_t sid =
        svc.open_session(make_parts(group, m, options, session_seed));
    svc.pump();
    ASSERT_EQ(svc.state(sid), SessionState::kDone);
    expect_outcomes_equal(svc.outcomes(sid), want);
  }
}

TEST(RendezvousService, InjectedForgedFrameNeverYieldsFalseAccept) {
  TestGroup& group = svc_group();
  const HandshakeOptions options;
  const std::size_t m = 3;
  const std::size_t last = rounds_of(group, m, options) - 1;

  RendezvousService svc;
  const std::uint64_t sid =
      svc.open_session(make_parts(group, m, options, "svc-forge"));

  // Inject an attacker-crafted payload for position 0's Phase-III slot
  // before the session has even produced round 0: it is buffered as a
  // reordered arrival and later occupies the slot, so the genuine frame
  // arrives second and is rejected as a duplicate.
  const Frame forged{sid, static_cast<std::uint32_t>(last), 0,
                     to_bytes("forged phase-3 payload")};
  EXPECT_EQ(svc.handle_frame(forged), FrameDisposition::kBuffered);

  svc.pump();
  ASSERT_EQ(svc.state(sid), SessionState::kDone);
  EXPECT_EQ(svc.metrics().frames_rejected.load(), 1u);  // the real slot-0

  const auto outcomes = svc.outcomes(sid);
  for (std::size_t j = 1; j < m; ++j) {
    SCOPED_TRACE("verifier position " + std::to_string(j));
    EXPECT_FALSE(outcomes[j].partner[0]) << "forged frame was accepted";
    EXPECT_TRUE(outcomes[j].reason[0] == FailureReason::kMalformedPhase3 ||
                outcomes[j].reason[0] == FailureReason::kBadSignature)
        << outcomes[j].reason[0];
    // The honest majority still confirms each other.
    for (std::size_t k = 1; k < m; ++k) EXPECT_TRUE(outcomes[j].partner[k]);
  }
}

TEST(RendezvousService, FrameDispositions) {
  TestGroup& group = svc_group();
  const HandshakeOptions options;
  QueueSink sink;
  ServiceOptions so;
  so.egress = &sink;
  RendezvousService svc(so);
  const std::uint64_t sid =
      svc.open_session(make_parts(group, 2, options, "svc-dispo"));
  svc.pump();  // produces round 0 into the sink
  ASSERT_EQ(sink.frames.size(), 2u);

  EXPECT_EQ(svc.handle_frame(Frame{sid + 99, 0, 0, {}}),
            FrameDisposition::kUnknownSession);
  EXPECT_EQ(svc.handle_frame(Frame{sid, 0, 7, {}}),
            FrameDisposition::kBadPosition);
  EXPECT_EQ(svc.handle_frame(Frame{sid, 999, 0, {}}),
            FrameDisposition::kStaleRound);

  EXPECT_EQ(svc.handle_frame(sink.frames[0]), FrameDisposition::kSlotted);
  EXPECT_EQ(svc.handle_frame(sink.frames[0]), FrameDisposition::kDuplicate);
  EXPECT_EQ(svc.handle_frame(sink.frames[1]),
            FrameDisposition::kCompletedRound);
  EXPECT_EQ(svc.metrics().frames_rejected.load(), 4u);
}

TEST(RendezvousService, FeedReassemblesTheInboundStream) {
  TestGroup& group = svc_group();
  const HandshakeOptions options;
  const auto want = serial_twin(group, 3, options, "svc-feed");

  QueueSink sink;
  ServiceOptions so;
  so.egress = &sink;
  RendezvousService svc(so);
  const std::uint64_t sid =
      svc.open_session(make_parts(group, 3, options, "svc-feed"));
  svc.pump();

  // Encode every outgoing frame onto one byte stream and feed it back in
  // 7-byte chunks, as a transport would.
  while (true) {
    std::vector<Frame> batch;
    {
      const std::lock_guard<std::mutex> lock(sink.mu);
      batch.swap(sink.frames);
    }
    if (batch.empty()) break;
    Bytes stream;
    for (const Frame& frame : batch) append(stream, encode_frame(frame));
    std::size_t fed = 0;
    for (std::size_t pos = 0; pos < stream.size(); pos += 7) {
      const std::size_t take = std::min<std::size_t>(7, stream.size() - pos);
      fed += svc.feed(BytesView(stream).subspan(pos, take));
    }
    EXPECT_EQ(fed, batch.size());
    svc.pump();
  }

  ASSERT_EQ(svc.state(sid), SessionState::kDone);
  expect_outcomes_equal(svc.outcomes(sid), want);

  // A malformed stream is a codec error, never session input.
  RendezvousService fresh;
  const Bytes hostile{0x00, 0x00, 0x00, 0x01};
  EXPECT_THROW((void)fresh.feed(hostile), CodecError);
}

TEST(RendezvousService, MetricsJsonExportsLatenciesAndCounters) {
  TestGroup& group = svc_group();
  const HandshakeOptions options;
  ManualClock clock;
  ServiceOptions so;
  so.clock = &clock;
  RendezvousService svc(so);
  const std::uint64_t sid =
      svc.open_session(make_parts(group, 2, options, "svc-json"));
  svc.pump();
  ASSERT_EQ(svc.state(sid), SessionState::kDone);

  const ServiceMetrics& metrics = svc.metrics();
  EXPECT_EQ(metrics.phase1_latency.count(), 1u);
  EXPECT_EQ(metrics.phase2_latency.count(), 1u);
  EXPECT_EQ(metrics.phase3_latency.count(), 1u);
  EXPECT_EQ(metrics.session_latency.count(), 1u);

  const std::string json = svc.metrics_json();
  for (const char* key :
       {"\"sessions\"", "\"opened\"", "\"confirmed\"", "\"active\"",
        "\"frames\"", "\"rejected\"", "\"rounds_advanced\"", "\"latency\"",
        "\"phase1\"", "\"session\"", "\"p50_us\"", "\"p99_us\"",
        "\"mean_us\"", "\"buckets\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing:\n"
                                                 << json;
  }
}

}  // namespace
}  // namespace shs::service
