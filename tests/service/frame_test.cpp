// Frame codec property tests: random frames survive encode -> decode
// exactly (including through a FrameBuffer fed arbitrarily fragmented
// chunks); every strict prefix fails cleanly with CodecError; hostile
// length prefixes (oversize, shorter-than-header) are rejected before any
// payload is buffered — the guarantee that lets the service treat a
// malformed stream as a dropped connection, never as session input.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "common/errors.h"
#include "service/frame.h"

namespace shs::service {
namespace {

Frame random_frame(std::mt19937_64& rng) {
  Frame frame;
  frame.session_id = rng();
  frame.round = static_cast<std::uint32_t>(rng() % 16);
  frame.position = static_cast<std::uint32_t>(rng() % 8);
  frame.payload.resize(rng() % 300);
  for (auto& b : frame.payload) b = static_cast<std::uint8_t>(rng());
  return frame;
}

TEST(FrameCodec, RoundTripRandomFrames) {
  std::mt19937_64 rng(20260805);
  for (int i = 0; i < 200; ++i) {
    const Frame frame = random_frame(rng);
    const Bytes wire = encode_frame(frame);
    EXPECT_EQ(wire.size(), wire_size(frame));
    EXPECT_EQ(decode_frame(wire), frame);
  }
}

TEST(FrameCodec, EveryStrictPrefixThrows) {
  std::mt19937_64 rng(7);
  const Frame frame = random_frame(rng);
  const Bytes wire = encode_frame(frame);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)decode_frame(BytesView(wire).first(len)), CodecError)
        << "prefix length " << len;
  }
}

TEST(FrameCodec, TrailingBytesThrow) {
  Bytes wire = encode_frame(Frame{1, 2, 3, to_bytes("payload")});
  wire.push_back(0);
  EXPECT_THROW((void)decode_frame(wire), CodecError);
}

TEST(FrameCodec, OversizePayloadRejectedAtEncode) {
  Frame frame;
  frame.payload.resize(kMaxFramePayload + 1);
  EXPECT_THROW((void)encode_frame(frame), CodecError);
}

TEST(FrameCodec, HostileLengthPrefixRejected) {
  // Length prefix larger than the cap: must throw, not stall waiting for
  // a gigabyte that never comes.
  Bytes oversize{0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW((void)decode_frame(oversize), CodecError);
  FrameBuffer buffer;
  buffer.feed(oversize);
  EXPECT_THROW((void)buffer.next(), CodecError);

  // Length prefix shorter than the fixed header: desynchronized stream.
  Bytes undersize{0x00, 0x00, 0x00, 0x04};
  EXPECT_THROW((void)decode_frame(undersize), CodecError);
  FrameBuffer fresh;
  fresh.feed(undersize);
  EXPECT_THROW((void)fresh.next(), CodecError);
}

TEST(FrameBuffer, ReassemblesArbitraryFragmentation) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Frame> frames;
    Bytes stream;
    for (int i = 0; i < 10; ++i) {
      frames.push_back(random_frame(rng));
      append(stream, encode_frame(frames.back()));
    }

    FrameBuffer buffer;
    std::vector<Frame> decoded;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk = 1 + rng() % 97;
      const std::size_t take = std::min(chunk, stream.size() - pos);
      buffer.feed(BytesView(stream).subspan(pos, take));
      pos += take;
      while (auto frame = buffer.next()) decoded.push_back(std::move(*frame));
    }
    EXPECT_EQ(decoded, frames);
    EXPECT_EQ(buffer.buffered(), 0u);
    EXPECT_FALSE(buffer.next().has_value());
  }
}

TEST(FrameBuffer, CapRejectsBufferedButUnframedBytes) {
  // A peer dripping bytes that never complete a frame is bounded by the
  // configured cap, with the typed error the transport keys its
  // drop-the-connection policy on.
  FrameBuffer buffer(64);
  EXPECT_EQ(buffer.max_buffered(), 64u);

  Frame big;
  big.payload.resize(200);
  const Bytes wire = encode_frame(big);
  buffer.feed(BytesView(wire).first(60));  // within the cap, no frame yet
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_THROW(buffer.feed(BytesView(wire).subspan(60, 10)),
               FrameBufferOverflow);
  // FrameBufferOverflow is a CodecError: existing catch sites keep working.
  try {
    buffer.feed(BytesView(wire).subspan(60, 10));
    FAIL();
  } catch (const CodecError&) {
  }
}

TEST(FrameBuffer, CapCountsUndrainedNotLifetimeBytes) {
  const Frame frame{4, 0, 0, to_bytes("drained frames free their bytes")};
  const Bytes wire = encode_frame(frame);
  FrameBuffer buffer(wire.size() + 8);  // fits ~one frame at a time
  for (int i = 0; i < 50; ++i) {
    buffer.feed(wire);
    EXPECT_EQ(buffer.next(), frame);  // drain keeps the buffer under cap
  }
  EXPECT_EQ(buffer.buffered(), 0u);
}

TEST(FrameBuffer, DefaultCapAdmitsMaxSizeFrames) {
  FrameBuffer buffer;
  EXPECT_EQ(buffer.max_buffered(), kDefaultMaxBuffered);
  Frame frame;
  frame.payload.resize(kMaxFramePayload);
  buffer.feed(encode_frame(frame));
  EXPECT_EQ(buffer.next(), frame);
}

TEST(FrameBuffer, ByteAtATimeDeliveryYieldsFrameExactlyOnCompletion) {
  const Frame frame{99, 1, 0, to_bytes("slow wire")};
  const Bytes wire = encode_frame(frame);
  FrameBuffer buffer;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    buffer.feed(BytesView(wire).subspan(i, 1));
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(buffer.next().has_value()) << "byte " << i;
    }
  }
  EXPECT_EQ(buffer.next(), frame);
}

}  // namespace
}  // namespace shs::service
