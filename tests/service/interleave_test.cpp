// Concurrent-session isolation: 64 sessions of mixed size (m = 2/4/8),
// mixed scheme (1 and 2) and mixed group membership run on ONE service
// while a seeded shuffler interleaves every in-flight frame across all
// sessions between pumps. Every session must still end byte-identical to
// its own serial net-driver run — sessions share a manager, a queue and a
// thread pool but no protocol state — and no cross-group position may
// ever be confirmed (no false accepts).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/fixture.h"
#include "service/service.h"

namespace shs::service {
namespace {

using core::HandshakeOptions;
using core::HandshakeOutcome;
using core::Member;
using core::testing::TestGroup;

/// Collects emitted frames for the test's shuffling wire.
struct QueueSink final : FrameSink {
  std::mutex mu;
  std::vector<Frame> frames;
  void on_frame(const Frame& frame) override {
    const std::lock_guard<std::mutex> lock(mu);
    frames.push_back(frame);
  }
};

struct SessionPlan {
  std::vector<const Member*> members;  // by position
  std::vector<bool> in_group_a;       // by position (false = group B)
  HandshakeOptions options;
  std::string seed;
};

TEST(Interleave, SixtyFourShuffledSessionsMatchTheirSerialTwins) {
  TestGroup group_a("ilv-a", core::GroupConfig{});
  TestGroup group_b("ilv-b", core::GroupConfig{});
  for (core::MemberId id = 1; id <= 8; ++id) {
    group_a.admit(id);
    group_b.admit(100 + id);
  }

  constexpr std::size_t kSessions = 64;
  constexpr std::size_t kSizes[] = {2, 4, 8};

  std::vector<SessionPlan> plans;
  plans.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    SessionPlan plan;
    const std::size_t m = kSizes[s % 3];
    const bool mixed = s % 4 == 3;  // positions alternate group A / B
    plan.options.self_distinction = s % 2 == 1;  // scheme 2 on odd sessions
    plan.options.traceable = s % 8 != 6;
    plan.seed = "ilv-" + std::to_string(s);
    for (std::size_t i = 0; i < m; ++i) {
      const bool in_a = !mixed || i % 2 == 0;
      plan.members.push_back(in_a ? &group_a.member(i) : &group_b.member(i));
      plan.in_group_a.push_back(in_a);
    }
    plans.push_back(std::move(plan));
  }

  // Serial twins first: the oracle for every session.
  std::vector<std::vector<HandshakeOutcome>> wants;
  wants.reserve(kSessions);
  for (const SessionPlan& plan : plans) {
    wants.push_back(
        core::testing::handshake(plan.members, plan.options, plan.seed));
  }

  QueueSink wire;
  ServiceOptions so;
  so.egress = &wire;
  RendezvousService svc(so);

  std::vector<std::uint64_t> sids;
  sids.reserve(kSessions);
  for (const SessionPlan& plan : plans) {
    std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
    parts.reserve(plan.members.size());
    for (std::size_t i = 0; i < plan.members.size(); ++i) {
      parts.push_back(plan.members[i]->handshake_party(
          i, plan.members.size(), plan.options, to_bytes(plan.seed)));
    }
    sids.push_back(svc.open_session(std::move(parts)));
  }
  EXPECT_EQ(svc.active_sessions(), kSessions);

  // The shuffling wire: drain every in-flight frame, permute the batch
  // across all sessions with a seeded RNG, deliver, pump, repeat.
  svc.pump();
  std::mt19937_64 rng(0x5e55'10f5);
  std::size_t delivered = 0;
  while (true) {
    std::vector<Frame> batch;
    {
      const std::lock_guard<std::mutex> lock(wire.mu);
      batch.swap(wire.frames);
    }
    if (batch.empty()) break;
    std::shuffle(batch.begin(), batch.end(), rng);
    for (Frame& frame : batch) {
      ASSERT_TRUE(accepted(svc.handle_frame(std::move(frame))));
      ++delivered;
    }
    svc.pump();
  }

  EXPECT_EQ(svc.active_sessions(), 0u);
  EXPECT_EQ(svc.metrics().frames_in.load(), delivered);
  EXPECT_EQ(svc.metrics().sessions_opened.load(), kSessions);
  EXPECT_EQ(svc.metrics().sessions_confirmed.load() +
                svc.metrics().sessions_failed.load(),
            kSessions);
  EXPECT_EQ(svc.metrics().sessions_expired.load(), 0u);

  for (std::size_t s = 0; s < kSessions; ++s) {
    SCOPED_TRACE("session " + std::to_string(s) + " (m=" +
                 std::to_string(plans[s].members.size()) + ", seed=" +
                 plans[s].seed + ")");
    ASSERT_EQ(svc.state(sids[s]), SessionState::kDone);
    const auto got = svc.outcomes(sids[s]);
    const auto& want = wants[s];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE("position " + std::to_string(i));
      EXPECT_EQ(got[i].completed, want[i].completed);
      EXPECT_EQ(got[i].partner, want[i].partner);
      EXPECT_EQ(got[i].full_success, want[i].full_success);
      EXPECT_EQ(got[i].session_key, want[i].session_key);
      EXPECT_EQ(got[i].reason, want[i].reason);
      EXPECT_EQ(got[i].transcript.serialize(), want[i].transcript.serialize());
      // No false accepts: a confirmed partner always shares the group.
      for (std::size_t j = 0; j < got[i].partner.size(); ++j) {
        if (got[i].partner[j]) {
          EXPECT_EQ(plans[s].in_group_a[i], plans[s].in_group_a[j])
              << "cross-group position " << j << " confirmed";
        }
      }
    }
    EXPECT_TRUE(svc.close(sids[s]));
  }
}

}  // namespace
}  // namespace shs::service
