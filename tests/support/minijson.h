// A strict, minimal JSON parser for test assertions (no dependencies).
// Parses the full RFC 8259 value grammar minus \u escapes (the metrics
// exporter never emits them) and rejects trailing garbage, so a test
// that parses an export is also validating it is well-formed JSON.
#pragma once

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace shs::testing::minijson {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) != 0;
  }
  /// Object member access; throws (failing the test with context) when
  /// the key is missing or this is not an object.
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (type != Type::kObject) {
      throw std::runtime_error("minijson: not an object at key " + key);
    }
    const auto it = object.find(key);
    if (it == object.end()) {
      throw std::runtime_error("minijson: missing key " + key);
    }
    return it->second;
  }
  [[nodiscard]] double num() const {
    if (type != Type::kNumber) throw std::runtime_error("minijson: not a number");
    return number;
  }
  [[nodiscard]] std::uint64_t u64() const {
    const double n = num();
    if (n < 0) throw std::runtime_error("minijson: negative");
    return static_cast<std::uint64_t>(n);
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    const Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("minijson: " + what + " at offset " +
                             std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Value v;
      v.type = Value::Type::kString;
      v.str = string();
      return v;
    }
    if (consume("true")) {
      Value v;
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume("false")) {
      Value v;
      v.type = Value::Type::kBool;
      return v;
    }
    if (consume("null")) return Value{};
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default: fail("unsupported escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      if (!v.object.emplace(std::move(key), value()).second) {
        fail("duplicate key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace shs::testing::minijson
