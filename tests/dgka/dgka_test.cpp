// DGKA tests: correctness (all parties derive equal keys and sids) across
// protocols and group sizes, freshness across sessions, complexity
// instrumentation (BD constant exps vs GDH O(m)), and robustness against
// tampered / malformed messages (failure, never a bogus agreement).
#include <gtest/gtest.h>

#include <memory>

#include "algebra/schnorr_group.h"
#include "crypto/drbg.h"
#include "common/errors.h"
#include "dgka/burmester_desmedt.h"
#include "dgka/gdh.h"

namespace shs::dgka {
namespace {

std::unique_ptr<DgkaScheme> make_scheme(const std::string& name) {
  auto group = algebra::SchnorrGroup::standard(algebra::ParamLevel::kTest);
  if (name == "bd") return std::make_unique<BurmesterDesmedt>(std::move(group));
  return std::make_unique<GdhTwo>(std::move(group));
}

struct Case {
  std::string scheme;
  std::size_t m;
};

class DgkaCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(DgkaCorrectness, AllPartiesAgreeOnKeyAndSid) {
  const auto& [name, m] = GetParam();
  auto scheme = make_scheme(name);
  crypto::HmacDrbg rng(to_bytes("dgka-" + name + std::to_string(m)));
  auto parties = run_session(*scheme, m, rng);
  ASSERT_EQ(parties.size(), m);
  for (const auto& p : parties) ASSERT_TRUE(p->accepted());
  const Bytes& key = parties[0]->session_key();
  const Bytes& sid = parties[0]->session_id();
  EXPECT_EQ(key.size(), 32u);
  for (const auto& p : parties) {
    EXPECT_EQ(p->session_key(), key);
    EXPECT_EQ(p->session_id(), sid);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DgkaCorrectness,
    ::testing::Values(Case{"bd", 2}, Case{"bd", 3}, Case{"bd", 4},
                      Case{"bd", 7}, Case{"bd", 16}, Case{"gdh", 2},
                      Case{"gdh", 3}, Case{"gdh", 4}, Case{"gdh", 7},
                      Case{"gdh", 16}),
    [](const auto& info) {
      return info.param.scheme + "_m" + std::to_string(info.param.m);
    });

TEST(Dgka, SessionsProduceFreshKeys) {
  auto scheme = make_scheme("bd");
  crypto::HmacDrbg rng(to_bytes("dgka-fresh"));
  auto s1 = run_session(*scheme, 3, rng);
  auto s2 = run_session(*scheme, 3, rng);
  EXPECT_NE(s1[0]->session_key(), s2[0]->session_key());
  EXPECT_NE(s1[0]->session_id(), s2[0]->session_id());
}

TEST(Dgka, BdUsesConstantRoundsAndLinearKeyDerivation) {
  auto scheme = make_scheme("bd");
  crypto::HmacDrbg rng(to_bytes("dgka-bd-cost"));
  for (std::size_t m : {2u, 8u, 16u}) {
    auto parties = run_session(*scheme, m, rng);
    EXPECT_EQ(parties[0]->rounds(), 2u);
    // 2 broadcast exps + m key-derivation multiply-exps.
    EXPECT_EQ(parties[0]->exponentiation_count(), 2 + m);
    EXPECT_EQ(parties[0]->messages_sent(), 2u);
  }
}

TEST(Dgka, GdhCostGrowsWithPosition) {
  auto scheme = make_scheme("gdh");
  crypto::HmacDrbg rng(to_bytes("dgka-gdh-cost"));
  const std::size_t m = 8;
  auto parties = run_session(*scheme, m, rng);
  EXPECT_EQ(parties[0]->rounds(), m);
  // Party i does i+1 upflow exps + 1 key exp; the last does m broadcastish.
  EXPECT_EQ(parties[0]->exponentiation_count(), 2u);       // 1 upflow + key
  EXPECT_EQ(parties[m - 1]->exponentiation_count(), m);    // m-1 downflow + key
  EXPECT_GT(parties[m - 1]->exponentiation_count(),
            parties[1]->exponentiation_count());
  for (const auto& p : parties) EXPECT_EQ(p->messages_sent(), 1u);
}

class DgkaTamper : public ::testing::TestWithParam<std::string> {};

TEST_P(DgkaTamper, TamperedMessageNeverYieldsSilentAgreement) {
  // A MITM flips bytes in party 0's round-0 broadcast as seen by party 1.
  // Unauthenticated DGKA cannot detect this (the framework's Phase II MAC
  // does); what we require is: either the session fails, or the keys
  // simply differ — never an inconsistent "accepted with equal sids but
  // different keys" state.
  auto scheme = make_scheme(GetParam());
  crypto::HmacDrbg rng(to_bytes("dgka-tamper"));
  const std::size_t m = 3;
  std::vector<std::unique_ptr<DgkaParty>> parties;
  for (std::size_t i = 0; i < m; ++i) {
    parties.push_back(scheme->create_party(i, m, rng));
  }
  const std::size_t rounds = parties[0]->rounds();
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Bytes> broadcast(m);
    for (std::size_t i = 0; i < m; ++i) broadcast[i] = parties[i]->message(r);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<Bytes> view = broadcast;
      if (r == 0 && i == 1 && !view[0].empty()) view[0][0] ^= 0x01;
      parties[i]->receive(r, view);
    }
  }
  bool all_accepted = true;
  for (const auto& p : parties) all_accepted = all_accepted && p->accepted();
  if (all_accepted) {
    EXPECT_NE(parties[0]->session_key(), parties[1]->session_key());
  }
  // Party 2 saw a consistent (untampered) view; party 1 did not. Their
  // sids must differ if both accepted, so Phase II will reject.
  if (parties[1]->accepted() && parties[2]->accepted()) {
    EXPECT_NE(parties[1]->session_id(), parties[2]->session_id());
  }
}

TEST_P(DgkaTamper, GarbageMessagesFailCleanly) {
  auto scheme = make_scheme(GetParam());
  crypto::HmacDrbg rng(to_bytes("dgka-garbage"));
  const std::size_t m = 3;
  std::vector<std::unique_ptr<DgkaParty>> parties;
  for (std::size_t i = 0; i < m; ++i) {
    parties.push_back(scheme->create_party(i, m, rng));
  }
  const std::size_t rounds = parties[0]->rounds();
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Bytes> broadcast(m);
    for (std::size_t i = 0; i < m; ++i) broadcast[i] = parties[i]->message(r);
    // Replace every message with garbage of the same length.
    for (auto& msg : broadcast) {
      if (!msg.empty()) msg.assign(msg.size(), 0xee);
    }
    for (std::size_t i = 0; i < m; ++i) parties[i]->receive(r, broadcast);
  }
  for (const auto& p : parties) {
    EXPECT_FALSE(p->accepted());
    EXPECT_THROW((void)p->session_key(), ProtocolError);
    EXPECT_THROW((void)p->session_id(), ProtocolError);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, DgkaTamper, ::testing::Values("bd", "gdh"));

TEST(Dgka, RejectsDegenerateSessions) {
  auto scheme = make_scheme("bd");
  crypto::HmacDrbg rng(to_bytes("dgka-degenerate"));
  EXPECT_THROW((void)scheme->create_party(0, 1, rng), ProtocolError);
  EXPECT_THROW((void)scheme->create_party(5, 3, rng), ProtocolError);
  auto gdh = make_scheme("gdh");
  EXPECT_THROW((void)gdh->create_party(0, 0, rng), ProtocolError);
}

TEST(Dgka, WrongCardinalityViewFails) {
  auto scheme = make_scheme("bd");
  crypto::HmacDrbg rng(to_bytes("dgka-cardinality"));
  auto party = scheme->create_party(0, 3, rng);
  (void)party->message(0);
  party->receive(0, std::vector<Bytes>(2));  // claims m=2
  (void)party->message(1);
  party->receive(1, std::vector<Bytes>(3));
  EXPECT_FALSE(party->accepted());
}

}  // namespace
}  // namespace shs::dgka
