// Schnorr signatures and the Katz-Yung authenticated DGKA extension:
// correctness, and the active-attack detection that plain (unauthenticated)
// DGKA cannot provide on its own.
#include <gtest/gtest.h>

#include "algebra/schnorr_sig.h"
#include "common/errors.h"
#include "crypto/drbg.h"
#include "dgka/katz_yung.h"

namespace shs::dgka {
namespace {

using algebra::ParamLevel;
using algebra::SchnorrGroup;
using algebra::SchnorrSig;

TEST(SchnorrSig, SignVerifyRoundtrip) {
  crypto::HmacDrbg rng(to_bytes("ssig"));
  const SchnorrSig sig(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = sig.keygen(rng);
  const Bytes msg = to_bytes("authenticated message");
  const Bytes signature = sig.sign(kp.sk, msg, rng);
  EXPECT_TRUE(sig.verify(kp.pk, msg, signature));
}

TEST(SchnorrSig, RejectsForgeries) {
  crypto::HmacDrbg rng(to_bytes("ssig-forge"));
  const SchnorrSig sig(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = sig.keygen(rng);
  const auto other = sig.keygen(rng);
  const Bytes msg = to_bytes("m");
  Bytes signature = sig.sign(kp.sk, msg, rng);
  EXPECT_FALSE(sig.verify(kp.pk, to_bytes("m2"), signature));  // other msg
  EXPECT_FALSE(sig.verify(other.pk, msg, signature));          // other key
  signature[5] ^= 1;                                           // tampered
  EXPECT_FALSE(sig.verify(kp.pk, msg, signature));
  EXPECT_FALSE(sig.verify(kp.pk, msg, Bytes(7, 3)));           // garbage
  EXPECT_FALSE(sig.verify(kp.pk, msg, {}));
}

TEST(SchnorrSig, SignaturesAreRandomized) {
  crypto::HmacDrbg rng(to_bytes("ssig-rand"));
  const SchnorrSig sig(SchnorrGroup::standard(ParamLevel::kTest));
  const auto kp = sig.keygen(rng);
  EXPECT_NE(sig.sign(kp.sk, to_bytes("m"), rng),
            sig.sign(kp.sk, to_bytes("m"), rng));
}

class KyFixture : public ::testing::Test {
 protected:
  KyFixture() : rng_(to_bytes("ky-fixture")) {
    const SchnorrGroup group = SchnorrGroup::standard(ParamLevel::kTest);
    for (int i = 0; i < 4; ++i) {
      identities_.push_back(KatzYung::make_identity(group, rng_));
    }
    std::vector<num::BigInt> roster;
    for (const auto& id : identities_) roster.push_back(id.pk);
    scheme_ = std::make_unique<KatzYung>(group, std::move(roster));
  }

  std::vector<std::unique_ptr<DgkaParty>> make_session(std::size_t m) {
    std::vector<std::unique_ptr<DgkaParty>> parties;
    for (std::size_t i = 0; i < m; ++i) {
      parties.push_back(scheme_->create_authenticated_party(
          i, m, identities_[i].sk, rng_));
    }
    return parties;
  }

  void run(std::vector<std::unique_ptr<DgkaParty>>& parties,
           std::size_t tamper_round = SIZE_MAX,
           std::size_t tamper_sender = SIZE_MAX) {
    const std::size_t m = parties.size();
    const std::size_t rounds = parties[0]->rounds();
    for (std::size_t r = 0; r < rounds; ++r) {
      std::vector<Bytes> msgs(m);
      for (std::size_t i = 0; i < m; ++i) msgs[i] = parties[i]->message(r);
      if (r == tamper_round && !msgs[tamper_sender].empty()) {
        msgs[tamper_sender][msgs[tamper_sender].size() / 2] ^= 0x01;
      }
      for (std::size_t i = 0; i < m; ++i) parties[i]->receive(r, msgs);
    }
  }

  crypto::HmacDrbg rng_;
  std::vector<KyIdentity> identities_;
  std::unique_ptr<KatzYung> scheme_;
};

TEST_F(KyFixture, AuthenticatedAgreementSucceeds) {
  for (std::size_t m : {2u, 3u, 4u}) {
    auto parties = make_session(m);
    EXPECT_EQ(parties[0]->rounds(), 3u);  // BD's 2 + nonce round
    run(parties);
    for (const auto& p : parties) ASSERT_TRUE(p->accepted()) << m;
    for (const auto& p : parties) {
      EXPECT_EQ(p->session_key(), parties[0]->session_key());
    }
  }
}

TEST_F(KyFixture, ActiveTamperingIsDetectedAndAborts) {
  // Unlike raw BD (where tampering silently desynchronizes keys and only
  // the framework's Phase-II MAC catches it), KY rejects at the signature
  // check: every party that saw the forged message refuses to accept.
  for (std::size_t round : {1u, 2u}) {
    auto parties = make_session(3);
    run(parties, round, 0);
    for (const auto& p : parties) {
      EXPECT_FALSE(p->accepted()) << "round " << round;
    }
  }
}

TEST_F(KyFixture, SignerOutsideRosterCannotJoin) {
  crypto::HmacDrbg rng(to_bytes("ky-outsider"));
  auto parties = make_session(3);
  // Replace party 2 with one signing under a key NOT in the roster.
  const auto rogue =
      KatzYung::make_identity(scheme_->group(), rng);
  parties[2] =
      scheme_->create_authenticated_party(2, 3, rogue.sk, rng);
  run(parties);
  EXPECT_FALSE(parties[0]->accepted());
  EXPECT_FALSE(parties[1]->accepted());
}

TEST_F(KyFixture, PlainCreatePartyRefusesWithoutKey) {
  crypto::HmacDrbg rng(to_bytes("ky-nokey"));
  EXPECT_THROW((void)scheme_->create_party(0, 2, rng), ProtocolError);
}

}  // namespace
}  // namespace shs::dgka
