// The group-authority service end to end over real TCP: kSub admission,
// epoch-stamped kRekey fan-out across {1, 2, 4} reactor shards, the
// serial-twin oracle (an in-process AuthorityEngine driven with the same
// op sequence must produce byte-identical broadcasts to what every
// subscribed socket receives, in epoch order), gap detection with kSync
// recovery, unsubscribe semantics, rejection paths, and the authority
// metrics on both export surfaces.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "authority/engine.h"
#include "authority/member_sync.h"
#include "common/errors.h"
#include "support/minijson.h"
#include "transport/authority_client.h"
#include "transport/client.h"
#include "transport/server.h"

namespace shs::transport {
namespace {

namespace minijson = shs::testing::minijson;
using authority::AuthorityEngine;
using authority::AuthorityOptions;
using authority::Scheme;

AuthorityOptions engine_options(std::uint64_t seed = 77) {
  AuthorityOptions o;
  o.scheme = Scheme::kLkh;
  o.capacity = 64;
  o.seed = seed;
  return o;
}

/// No handshake sessions in these tests — the factory must never run.
SessionFactory no_sessions() {
  return [](BytesView) -> std::vector<std::unique_ptr<core::HandshakeParticipant>> {
    throw ProtocolError("authority tests open no sessions");
  };
}

ServerOptions server_options(std::size_t shards) {
  ServerOptions so;
  so.num_shards = shards;
  so.enable_authority = true;
  so.authority_options = engine_options();
  return so;
}

/// Blocks for the kSubOk/kSubErr reply matching `tag` on a raw client;
/// returns the serialized member state, throws on kSubErr.
Bytes await_sub_ok(Client& client, std::uint32_t tag) {
  while (true) {
    auto frame = client.recv_frame();
    if (!frame) throw TransportError("server closed during subscribe");
    if (is_control(*frame)) {
      const auto op = static_cast<ControlOp>(frame->round);
      if (op == ControlOp::kSubOk && frame->position == tag) {
        return decode_sub_ok(*frame);
      }
      if (op == ControlOp::kSubErr && frame->position == tag) {
        throw ProtocolError(decode_sub_err(*frame).second);
      }
    }
    throw ProtocolError("unexpected frame during subscribe");
  }
}

/// Subscribes a raw relay client on the wire and returns the serialized
/// member state from kSubOk. Throws on kSubErr.
Bytes wire_subscribe(Client& client, std::uint64_t member_id, bool join,
                     std::uint32_t tag = 1) {
  SubscribeRequest request;
  request.member_id = member_id;
  request.join = join;
  client.send_frame(make_sub(tag, request));
  return await_sub_ok(client, tag);
}

/// Blocks for the next kRekey broadcast on a raw client.
RekeyEnvelope await_rekey(Client& client) {
  while (true) {
    auto frame = client.recv_frame();
    if (!frame) throw TransportError("server closed the rekey feed");
    if (is_control(*frame) &&
        static_cast<ControlOp>(frame->round) == ControlOp::kRekey) {
      return decode_rekey(*frame);
    }
    throw ProtocolError("unexpected frame on the rekey feed");
  }
}

// The acceptance-criteria oracle: drive identical op sequences through
// the served engine and a serial in-process twin; every subscribed
// socket must observe the twin's broadcasts byte for byte, in epoch
// order, whether the fan-out crosses 1, 2 or 4 shards.
TEST(AuthorityTransport, SerialTwinBroadcastsByteIdenticalAcrossShards) {
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(shards) + " shard(s)");
    TransportServer server(server_options(shards), {}, no_sessions());
    server.start();
    AuthorityEngine twin(engine_options());
    std::vector<cgkd::RekeyMessage> broadcasts;  // the twin's, in order

    // Two wire-level collectors (members 1, 2) and one high-level
    // AuthorityClient (member 3), admitted sequentially. A joiner is
    // subscribed before its own join broadcast fans out, so each feed
    // starts at the member's own join epoch.
    Client c1({.port = server.port()});
    Client c2({.port = server.port()});
    c1.connect();
    c2.connect();
    std::uint64_t join_epoch[3] = {};
    (void)wire_subscribe(c1, 1, /*join=*/true);
    auto adm = twin.subscribe(1, true);
    broadcasts.push_back(*adm.broadcast);
    join_epoch[0] = adm.broadcast->epoch;
    (void)wire_subscribe(c2, 2, /*join=*/true);
    adm = twin.subscribe(2, true);
    broadcasts.push_back(*adm.broadcast);
    join_epoch[1] = adm.broadcast->epoch;

    AuthorityClient c3({.port = server.port()});
    c3.connect();
    c3.subscribe(3, /*join=*/true);
    adm = twin.subscribe(3, true);
    broadcasts.push_back(*adm.broadcast);
    join_epoch[2] = adm.broadcast->epoch;
    EXPECT_EQ(c3.epoch(), join_epoch[2]);

    // Server-driven churn, mirrored on the twin op for op.
    const auto srv_j = server.authority_join(10);
    broadcasts.push_back(twin.join(10));
    EXPECT_EQ(srv_j.payload, broadcasts.back().payload);
    broadcasts.push_back(twin.refresh());
    EXPECT_EQ(server.authority_refresh().payload, broadcasts.back().payload);
    broadcasts.push_back(twin.leave(10));
    EXPECT_EQ(server.authority_leave(10).payload, broadcasts.back().payload);
    broadcasts.push_back(twin.refresh());
    EXPECT_EQ(server.authority_refresh().payload, broadcasts.back().payload);

    // Every socket sees exactly the twin's suffix from its join epoch
    // on, byte for byte and in epoch order.
    Client* raw[2] = {&c1, &c2};
    for (int k = 0; k < 2; ++k) {
      SCOPED_TRACE("member " + std::to_string(k + 1));
      for (const auto& want : broadcasts) {
        if (want.epoch < join_epoch[k]) continue;
        const RekeyEnvelope got = await_rekey(*raw[k]);
        EXPECT_EQ(got.epoch, want.epoch);
        EXPECT_EQ(got.payload, want.payload);
      }
    }
    ASSERT_TRUE(c3.wait_for_epoch(twin.epoch(), std::chrono::seconds(5)));
    EXPECT_EQ(c3.epoch(), twin.epoch());
    EXPECT_EQ(c3.group_key(), twin.group_key());
    EXPECT_EQ(c3.resyncs(), 0u) << "an in-order feed must never re-sync";

    ASSERT_NE(server.authority(), nullptr);
    EXPECT_EQ(server.authority()->epoch(), twin.epoch());
    EXPECT_EQ(server.authority()->member_count(), twin.member_count());
    EXPECT_EQ(server.authority_subscriber_count(), 3u);

    // Metrics: both surfaces carry the authority block, gauges from the
    // live engine, rekey counters stamped once per broadcast (not once
    // per shard).
    const minijson::Value root = minijson::parse(server.metrics_json());
    const minijson::Value& auth = root.at("authority");
    EXPECT_EQ(auth.at("epoch").u64(), twin.epoch());
    EXPECT_EQ(auth.at("members").u64(), twin.member_count());
    EXPECT_EQ(auth.at("subscribers").u64(), 3u);
    EXPECT_EQ(auth.at("rekeys").u64(), broadcasts.size());
    EXPECT_EQ(auth.at("subscribes").u64(), 3u);
    EXPECT_GT(auth.at("rekeys_relayed").u64(), auth.at("rekeys").u64())
        << "3 subscribers per broadcast must out-count the broadcasts";
    const std::string prom = server.metrics_prometheus();
    EXPECT_NE(prom.find("\nshs_authority_epoch " +
                        std::to_string(twin.epoch())),
              std::string::npos);
    EXPECT_NE(prom.find("shs_authority_rekeys_total"), std::string::npos);
    if (shards > 1) {
      EXPECT_NE(prom.find("shs_shard_authority_subscribers"),
                std::string::npos);
    }

    c3.unsubscribe();
    server.shutdown();
  }
}

// A member that loses a broadcast (simulated at the application layer by
// dropping one received envelope) hits kNeedSync on the next one — LKH
// state cannot skip epochs — and recovers over the wire with kSync: the
// fresh snapshot re-arms the feed and preserves keyring continuity.
TEST(AuthorityTransport, GapRecoversViaSyncOverTheWire) {
  TransportServer server(server_options(1), {}, no_sessions());
  server.start();

  Client client({.port = server.port()});
  client.connect();
  authority::MemberSync sync;
  sync.install_state(wire_subscribe(client, 1, /*join=*/true));
  const RekeyEnvelope own_join = await_rekey(client);
  EXPECT_EQ(own_join.epoch, sync.epoch());

  (void)server.authority_refresh();
  (void)server.authority_refresh();
  (void)server.authority_refresh();

  auto as_msg = [](const RekeyEnvelope& e) {
    cgkd::RekeyMessage m;
    m.epoch = e.epoch;
    m.payload = e.payload;
    return m;
  };
  EXPECT_EQ(sync.apply(as_msg(await_rekey(client))),
            authority::ApplyResult::kApplied);
  (void)await_rekey(client);  // lost in transit (simulated)
  EXPECT_EQ(sync.apply(as_msg(await_rekey(client))),
            authority::ApplyResult::kNeedSync);
  EXPECT_EQ(sync.gaps_detected(), 1u);

  client.send_frame(make_sync(9, 1));
  sync.install_state(await_sub_ok(client, 9));
  EXPECT_EQ(sync.epoch(), server.authority()->epoch());
  EXPECT_EQ(sync.group_key(), server.authority()->group_key());

  // Continuity after recovery: the next broadcast applies cleanly.
  (void)server.authority_refresh();
  EXPECT_EQ(sync.apply(as_msg(await_rekey(client))),
            authority::ApplyResult::kApplied);

  const minijson::Value root = minijson::parse(server.metrics_json());
  EXPECT_GE(root.at("authority").at("syncs").u64(), 1u);
  server.shutdown();
}

// AuthorityClient's own recovery path: resync() round-trips kSync and
// installs the snapshot; explicit resyncs are counted.
TEST(AuthorityTransport, AuthorityClientResyncAndUnsubscribe) {
  TransportServer server(server_options(2), {}, no_sessions());
  server.start();

  AuthorityClient a({.port = server.port()});
  AuthorityClient b({.port = server.port()});
  a.connect();
  b.connect();
  a.subscribe(1, /*join=*/true);
  b.subscribe(2, /*join=*/true);
  ASSERT_TRUE(a.wait_for_epoch(2, std::chrono::seconds(5)));

  a.resync();
  EXPECT_EQ(a.resyncs(), 1u);
  EXPECT_EQ(a.epoch(), server.authority()->epoch());

  // After unsubscribe, a's feed is dry while b keeps rekeying. kUnsub
  // is fire-and-forget, so wait for the loop thread to process it
  // before churning again.
  a.unsubscribe();
  const auto unsub_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.authority_subscriber_count() > 1 &&
         std::chrono::steady_clock::now() < unsub_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.authority_subscriber_count(), 1u);
  const std::uint64_t parked = a.epoch();
  (void)server.authority_refresh();
  ASSERT_TRUE(b.wait_for_epoch(3, std::chrono::seconds(5)));
  EXPECT_EQ(a.poll(std::chrono::milliseconds(300)), 0u);
  EXPECT_EQ(a.epoch(), parked);

  // Dead connections are purged from the subscription table.
  b.close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.authority_subscriber_count() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.authority_subscriber_count(), 0u);
  server.shutdown();
}

TEST(AuthorityTransport, RejectionPathsAnswerWithSubErr) {
  // Authority disabled: every kSub is rejected, server-driven churn
  // throws, and the metrics gauges stay zero.
  {
    ServerOptions so;  // enable_authority defaults to false
    TransportServer server(so, {}, no_sessions());
    server.start();
    AuthorityClient client({.port = server.port()});
    client.connect();
    EXPECT_THROW(client.subscribe(1, /*join=*/true), ProtocolError);
    EXPECT_THROW((void)server.authority_refresh(), ProtocolError);
    EXPECT_EQ(server.authority(), nullptr);
    const minijson::Value root = minijson::parse(server.metrics_json());
    EXPECT_EQ(root.at("authority").at("members").u64(), 0u);
    server.shutdown();
  }
  // Authority enabled: snapshot of a non-member and duplicate join are
  // engine-level rejections relayed as kSubErr with the engine's text.
  {
    TransportServer server(server_options(1), {}, no_sessions());
    server.start();
    AuthorityClient client({.port = server.port()});
    client.connect();
    EXPECT_THROW(client.subscribe(5, /*join=*/false), ProtocolError);
    client.subscribe(5, /*join=*/true);
    Client dup({.port = server.port()});
    dup.connect();
    EXPECT_THROW((void)wire_subscribe(dup, 5, /*join=*/true), ProtocolError);
    const minijson::Value root = minijson::parse(server.metrics_json());
    EXPECT_GE(root.at("authority").at("rejects").u64(), 2u);
    server.shutdown();
  }
}

}  // namespace
}  // namespace shs::transport
