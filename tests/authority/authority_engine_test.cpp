// AuthorityEngine + MemberSync units: scheme selection, churn semantics
// behind the engine's mutex, seed-determinism (the serial-twin oracle's
// foundation — same seed + same op sequence must emit byte-identical
// broadcasts), member-side apply/stale/gap verdicts with keyring
// maintenance, and the redaction canary for serialized join state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "authority/engine.h"
#include "authority/member_sync.h"
#include "common/errors.h"
#include "obs/log.h"
#include "obs/redact.h"

namespace shs::authority {
namespace {

AuthorityOptions options_for(Scheme scheme, std::uint64_t seed = 7) {
  AuthorityOptions o;
  o.scheme = scheme;
  o.capacity = 64;
  o.seed = seed;
  return o;
}

TEST(AuthorityEngine, SchemeVocabularyRoundTrips) {
  EXPECT_EQ(scheme_from_string("star"), Scheme::kStar);
  EXPECT_EQ(scheme_from_string("lkh"), Scheme::kLkh);
  EXPECT_EQ(scheme_from_string("sd"), Scheme::kSubsetDiff);
  EXPECT_THROW((void)scheme_from_string("btree"), ProtocolError);
  for (Scheme s : {Scheme::kStar, Scheme::kLkh, Scheme::kSubsetDiff}) {
    EXPECT_EQ(scheme_from_string(to_string(s)), s);
  }
}

TEST(AuthorityEngine, ChurnBumpsEpochAndTracksMembership) {
  AuthorityEngine engine(options_for(Scheme::kLkh));
  EXPECT_EQ(engine.epoch(), 0u);
  EXPECT_EQ(engine.member_count(), 0u);

  const auto j1 = engine.join(1);
  const auto j2 = engine.join(2);
  EXPECT_EQ(j2.epoch, 2u);
  EXPECT_EQ(engine.epoch(), 2u);
  EXPECT_TRUE(engine.is_member(1));
  EXPECT_EQ(engine.member_count(), 2u);

  const auto l1 = engine.leave(1);
  EXPECT_EQ(l1.epoch, 3u);
  EXPECT_FALSE(engine.is_member(1));
  EXPECT_THROW((void)engine.leave(1), ProtocolError);
  EXPECT_THROW((void)engine.join(2), ProtocolError);

  const Bytes before = engine.group_key();
  const auto r = engine.refresh();
  EXPECT_EQ(r.epoch, 4u);
  EXPECT_NE(engine.group_key(), before);
  EXPECT_EQ(engine.member_count(), 1u);
}

// Same seed + same operation sequence => byte-identical broadcasts and
// keys, for every scheme. The transport's serial-twin oracle drives an
// in-process engine against the served one and compares bytes; this is
// the property that comparison rests on.
TEST(AuthorityEngine, SameSeedSameOpsGiveByteIdenticalBroadcasts) {
  for (Scheme scheme : {Scheme::kStar, Scheme::kLkh, Scheme::kSubsetDiff}) {
    SCOPED_TRACE(to_string(scheme));
    AuthorityEngine a(options_for(scheme, 42));
    AuthorityEngine b(options_for(scheme, 42));
    AuthorityEngine c(options_for(scheme, 43));  // control: different seed
    auto drive = [](AuthorityEngine& e) {
      std::vector<cgkd::RekeyMessage> out;
      for (cgkd::MemberId id = 1; id <= 6; ++id) out.push_back(e.join(id));
      out.push_back(e.leave(3));
      out.push_back(e.refresh());
      out.push_back(e.join(9));
      return out;
    };
    const auto ma = drive(a);
    const auto mb = drive(b);
    const auto mc = drive(c);
    ASSERT_EQ(ma.size(), mb.size());
    bool differs_from_control = false;
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].epoch, mb[i].epoch);
      EXPECT_EQ(ma[i].payload, mb[i].payload) << "op " << i;
      differs_from_control |= ma[i].payload != mc[i].payload;
    }
    EXPECT_EQ(a.group_key(), b.group_key());
    EXPECT_TRUE(differs_from_control) << "seed is not reaching the keys";
    EXPECT_NE(a.group_key(), c.group_key());
  }
}

TEST(AuthorityEngine, BootstrapIsOneEpochAndProvisionsViaSnapshots) {
  AuthorityEngine engine(options_for(Scheme::kLkh));
  std::vector<cgkd::MemberId> ids;
  for (cgkd::MemberId id = 1; id <= 32; ++id) ids.push_back(id);
  const auto msg = engine.bootstrap(ids);
  EXPECT_EQ(msg.epoch, 1u);
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_EQ(engine.member_count(), 32u);

  MemberSync sync;
  sync.install_state(engine.member_state(17));
  EXPECT_EQ(sync.id(), 17u);
  EXPECT_EQ(sync.epoch(), 1u);
  EXPECT_EQ(sync.group_key(), engine.group_key());
  EXPECT_THROW((void)engine.member_state(99), ProtocolError);
}

TEST(AuthorityEngine, SubscribeJoinAdmitsAndSnapshotDoesNot) {
  AuthorityEngine engine(options_for(Scheme::kStar));
  (void)engine.join(1);

  const Admission joined = engine.subscribe(2, /*join=*/true);
  ASSERT_TRUE(joined.broadcast.has_value());
  EXPECT_EQ(joined.broadcast->epoch, 2u);
  EXPECT_TRUE(engine.is_member(2));

  const std::uint64_t epoch = engine.epoch();
  const Admission snap = engine.subscribe(1, /*join=*/false);
  EXPECT_FALSE(snap.broadcast.has_value());
  EXPECT_EQ(engine.epoch(), epoch) << "snapshot must not rekey";

  MemberSync sync;
  sync.install_state(snap.state);
  EXPECT_EQ(sync.id(), 1u);
  EXPECT_EQ(sync.group_key(), engine.group_key());

  EXPECT_THROW((void)engine.subscribe(9, /*join=*/false), ProtocolError);
}

// MemberSync verdicts: in-order broadcasts apply and retire keys into
// the grace window; replays are kStale; an LKH member that missed an
// epoch gets kNeedSync (gap counted) and recovers by installing a fresh
// snapshot that preserves keyring continuity.
TEST(MemberSync, AppliesStaleDropsAndGapRecovery) {
  AuthorityEngine engine(options_for(Scheme::kLkh));
  const Admission adm = engine.subscribe(1, /*join=*/true);

  MemberSync sync(/*grace=*/2);
  EXPECT_FALSE(sync.ready());
  sync.install_state(adm.state);
  ASSERT_TRUE(sync.ready());
  EXPECT_EQ(sync.epoch(), 1u);

  const Bytes key_e1 = sync.group_key();
  const auto e2 = engine.join(2);
  EXPECT_EQ(sync.apply(e2), ApplyResult::kApplied);
  EXPECT_EQ(sync.epoch(), 2u);
  ASSERT_EQ(sync.keyring().history.size(), 1u);
  EXPECT_EQ(sync.keyring().history[0].epoch, 1u);
  EXPECT_EQ(sync.keyring().history[0].key, key_e1);

  EXPECT_EQ(sync.apply(e2), ApplyResult::kStale) << "replay must drop";
  EXPECT_EQ(sync.epoch(), 2u);

  // Miss epoch 3 entirely; epoch 4 is then undecryptable for LKH.
  (void)engine.refresh();
  const auto e4 = engine.refresh();
  EXPECT_EQ(sync.apply(e4), ApplyResult::kNeedSync);
  EXPECT_EQ(sync.gaps_detected(), 1u);
  EXPECT_EQ(sync.epoch(), 2u) << "failed apply must not advance";

  // Recovery: fresh snapshot. The jump 2 -> 4 retires the epoch-2 key so
  // handshakes pinned before the gap still classify as kStaleEpoch.
  sync.install_state(engine.member_state(1));
  EXPECT_EQ(sync.epoch(), 4u);
  EXPECT_EQ(sync.group_key(), engine.group_key());
  ASSERT_GE(sync.keyring().history.size(), 1u);
  EXPECT_EQ(sync.keyring().history[0].epoch, 2u);

  const auto e5 = engine.refresh();
  EXPECT_EQ(sync.apply(e5), ApplyResult::kApplied);
  EXPECT_EQ(sync.gaps_detected(), 1u) << "recovered gap must not recount";
}

TEST(MemberSync, AccessorsThrowUntilInstalled) {
  MemberSync sync;
  EXPECT_THROW((void)sync.id(), ProtocolError);
  EXPECT_THROW((void)sync.epoch(), ProtocolError);
  EXPECT_THROW((void)sync.group_key(), ProtocolError);
  EXPECT_THROW((void)sync.apply(cgkd::RekeyMessage{}), ProtocolError);
}

struct AuditGuard {
  AuditGuard() {
    obs::RedactionAudit::instance().reset();
    obs::RedactionAudit::instance().enable(true);
  }
  ~AuditGuard() {
    obs::RedactionAudit::instance().reset();
    obs::RedactionAudit::instance().enable(false);
  }
};

// Serialized join state registers with the redaction audit the moment the
// engine emits it, so any diagnostics surface carrying the blob (raw or
// hex) trips a violation. The deliberate leak proves the scanner sees it.
TEST(AuthorityRedaction, JoinStateIsRegisteredAndDeliberateLeakIsCaught) {
  AuditGuard guard;
  obs::RedactionAudit& audit = obs::RedactionAudit::instance();

  AuthorityEngine engine(options_for(Scheme::kLkh));
  const Admission adm = engine.subscribe(1, /*join=*/true);
  EXPECT_GT(audit.secret_count(), 0u)
      << "join emitted no audited secret — the canary proves nothing";
  ASSERT_EQ(audit.violations(), 0u);

  obs::CaptureSink sink;
  obs::Logger::Options lo;
  lo.sink = &sink;
  obs::Logger logger(lo);
  logger.info("authority", "benign line").u64("member", 1);
  EXPECT_EQ(audit.violations(), 0u) << "metadata-only logging must pass";

  logger.info("authority", "leaking on purpose")
      .str("state_hex", to_hex(adm.state));
  ASSERT_GE(audit.violations(), 1u)
      << "a hexed join blob sailed through the audit";
  EXPECT_EQ(audit.violation_log()[0].label, "authority-join-state");
}

}  // namespace
}  // namespace shs::authority
