// Cross-epoch handshake conformance: participants whose group keys come
// from a live AuthorityEngine, pinned at whatever epoch their MemberSync
// reached when the handshake started. The invariants under test (ISSUE
// acceptance criteria):
//
//   * same-pinned-epoch members complete even after later rekeys land
//     (bounded-grace: the epoch is pinned at construction);
//   * a peer within the grace window fails closed and the *newer* side
//     types the slot kStaleEpoch (the stale side cannot hold future keys
//     — it reports generic kBadTag);
//   * skew beyond the grace window degrades to kBadTag;
//   * partial-success partitions split cliques exactly by epoch, with
//     distinct session keys per clique;
//   * zero false accepts across a seeded adversary sweep: no cross-epoch
//     confirmation ever, and an outsider with a random key is never
//     classified kStaleEpoch (the typed verdict is not spoofable);
//   * wire shape is unchanged — every Phase-III transcript entry has the
//     same shape whether or not stale classification fired.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "authority/engine.h"
#include "authority/member_sync.h"
#include "common/codec.h"
#include "core/fixture.h"
#include "core/handshake.h"
#include "crypto/drbg.h"

namespace shs::authority {
namespace {

constexpr std::size_t kGrace = 2;  // GroupConfig::epoch_grace default

/// Process-wide handshake context: credentials and GSIG/PKE state for up
/// to 8 positions. The CGKD keys under test come from the engine below,
/// not from this group's own (quiescent) CGKD layer.
core::testing::TestGroup& epoch_group() {
  static auto* group = [] {
    auto* g = new core::testing::TestGroup("epoch-conf", core::GroupConfig{});
    for (core::MemberId id = 1; id <= 8; ++id) g->admit(id);
    return g;
  }();
  return *group;
}

/// An engine plus one MemberSync per member, where member i missed the
/// last skews[i] of `churn` refresh broadcasts — its key and keyring are
/// pinned skews[i] epochs behind the engine.
struct EpochedKeys {
  std::unique_ptr<AuthorityEngine> engine;
  std::vector<MemberSync> syncs;

  [[nodiscard]] std::uint64_t epoch() const { return engine->epoch(); }
};

EpochedKeys epoched_members(std::size_t m, std::size_t churn,
                            const std::vector<std::size_t>& skews,
                            std::uint64_t seed = 2026) {
  AuthorityOptions options;
  options.scheme = Scheme::kLkh;
  options.capacity = 64;
  options.seed = seed;
  EpochedKeys out;
  out.engine = std::make_unique<AuthorityEngine>(options);
  std::vector<cgkd::MemberId> ids;
  for (std::size_t i = 0; i < m; ++i) ids.push_back(i + 1);
  (void)out.engine->bootstrap(ids);
  out.syncs.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.syncs[i].install_state(out.engine->member_state(ids[i]));
  }
  std::vector<cgkd::RekeyMessage> msgs;
  for (std::size_t c = 0; c < churn; ++c) {
    msgs.push_back(out.engine->refresh());
  }
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_LE(skews[i], churn);
    for (std::size_t j = 0; j + skews[i] < churn; ++j) {
      EXPECT_EQ(out.syncs[i].apply(msgs[j]), ApplyResult::kApplied);
    }
  }
  return out;
}

std::unique_ptr<core::HandshakeParticipant> party(
    std::size_t position, std::size_t m, const Bytes& key,
    const core::EpochKeyring& keyring, std::string_view label,
    const core::HandshakeOptions& options = {}) {
  auto& group = epoch_group();
  ByteWriter seed;
  seed.str("epoch-conformance");
  seed.str(std::string(label));
  seed.u64(position);
  return std::make_unique<core::HandshakeParticipant>(
      group.authority(), group.member(position).credential(), key, position,
      m, options, seed.buffer(), keyring);
}

std::vector<core::HandshakeOutcome> run(
    std::vector<std::unique_ptr<core::HandshakeParticipant>>& parts) {
  std::vector<core::HandshakeParticipant*> ptrs;
  ptrs.reserve(parts.size());
  for (auto& p : parts) ptrs.push_back(p.get());
  return core::run_handshake(ptrs);
}

using core::FailureReason;

TEST(AuthorityEpoch, CurrentMembersCompleteFullyAfterChurn) {
  const std::size_t m = 3;
  auto fleet = epoched_members(m, /*churn=*/3, {0, 0, 0});
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(party(i, m, fleet.syncs[i].group_key(),
                          fleet.syncs[i].keyring(), "all-current"));
  }
  const auto outcomes = run(parts);
  for (std::size_t i = 0; i < m; ++i) {
    SCOPED_TRACE("position " + std::to_string(i));
    EXPECT_TRUE(outcomes[i].full_success);
    EXPECT_EQ(outcomes[i].epoch, fleet.epoch());
    EXPECT_EQ(outcomes[i].session_key, outcomes[0].session_key);
  }
}

// One rekey behind (within the grace window): the handshake fails closed
// for both sides, and only the newer side can *type* the failure — it
// still holds the retired key the stale peer's tag is keyed by. The
// stale side holds no future keys (that is the CGKD security property)
// and reports the generic kBadTag.
TEST(AuthorityEpoch, StaleWithinGraceIsTypedOnTheNewerSideOnly) {
  auto fleet = epoched_members(2, /*churn=*/2, {0, 1});
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < 2; ++i) {
    parts.push_back(party(i, 2, fleet.syncs[i].group_key(),
                          fleet.syncs[i].keyring(), "one-behind"));
  }
  const auto outcomes = run(parts);

  EXPECT_EQ(outcomes[0].epoch, fleet.epoch());
  EXPECT_EQ(outcomes[1].epoch, fleet.epoch() - 1);
  EXPECT_EQ(outcomes[0].confirmed_count(), 0u);
  EXPECT_EQ(outcomes[1].confirmed_count(), 0u);
  EXPECT_TRUE(outcomes[0].session_key.empty());
  EXPECT_EQ(outcomes[0].reason[1], FailureReason::kStaleEpoch);
  EXPECT_EQ(outcomes[1].reason[0], FailureReason::kBadTag)
      << "the stale side must NOT be able to classify the newer peer";
}

TEST(AuthorityEpoch, SkewBeyondGraceDegradesToBadTag) {
  const std::size_t skew = kGrace + 1;
  auto fleet = epoched_members(2, /*churn=*/skew, {0, skew});
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < 2; ++i) {
    parts.push_back(party(i, 2, fleet.syncs[i].group_key(),
                          fleet.syncs[i].keyring(), "beyond-grace"));
  }
  const auto outcomes = run(parts);
  EXPECT_EQ(outcomes[0].confirmed_count(), 0u);
  EXPECT_EQ(outcomes[0].reason[1], FailureReason::kBadTag)
      << "a key outside the grace window must not classify as stale";
  EXPECT_EQ(outcomes[1].reason[0], FailureReason::kBadTag);
}

// Five participants across three epochs: {0,1} current, {2,3} one
// behind, {4} two behind. Partial success must partition the set into
// cliques *exactly* by pinned epoch, with distinct session keys, and
// every cross-epoch slot typed from the newer side.
TEST(AuthorityEpoch, PartitionSplitsCliquesExactlyByEpoch) {
  const std::size_t m = 5;
  const std::vector<std::size_t> skews = {0, 0, 1, 1, 2};
  auto fleet = epoched_members(m, /*churn=*/2, skews);
  std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
  for (std::size_t i = 0; i < m; ++i) {
    parts.push_back(party(i, m, fleet.syncs[i].group_key(),
                          fleet.syncs[i].keyring(), "three-epochs"));
  }
  const auto outcomes = run(parts);

  for (std::size_t i = 0; i < m; ++i) {
    SCOPED_TRACE("position " + std::to_string(i));
    EXPECT_EQ(outcomes[i].epoch, fleet.epoch() - skews[i]);
    for (std::size_t j = 0; j < m; ++j) {
      // Position 4's epoch has no company: no clique, so even its own
      // slot stays false.
      EXPECT_EQ(outcomes[i].partner[j], skews[i] == skews[j] && skews[i] != 2)
          << "slot " << j;
    }
  }
  // Cliques {0,1} and {2,3} complete with distinct keys; {4} is alone.
  EXPECT_EQ(outcomes[0].session_key, outcomes[1].session_key);
  EXPECT_EQ(outcomes[2].session_key, outcomes[3].session_key);
  ASSERT_FALSE(outcomes[0].session_key.empty());
  EXPECT_NE(outcomes[0].session_key, outcomes[2].session_key);
  EXPECT_EQ(outcomes[4].confirmed_count(), 0u);

  // Typed classification is strictly "newer side, within grace".
  EXPECT_EQ(outcomes[0].reason[2], FailureReason::kStaleEpoch);
  EXPECT_EQ(outcomes[0].reason[4], FailureReason::kStaleEpoch);
  EXPECT_EQ(outcomes[2].reason[0], FailureReason::kBadTag);
  EXPECT_EQ(outcomes[2].reason[4], FailureReason::kStaleEpoch);
  EXPECT_EQ(outcomes[4].reason[0], FailureReason::kBadTag);
  EXPECT_EQ(outcomes[4].reason[2], FailureReason::kBadTag);
}

// The rollover scenario the service makes routine: participants pin
// their epoch at construction, so a rekey broadcast landing mid-flight
// does not break a handshake already in progress — while a handshake
// started *after* the members applied the broadcast completes at the new
// epoch with a fresh key.
TEST(AuthorityEpoch, PinnedEpochSurvivesMidHandshakeRollover) {
  const std::size_t m = 3;
  auto fleet = epoched_members(m, /*churn=*/1, {0, 0, 0});
  const std::uint64_t pinned = fleet.epoch();

  std::vector<std::unique_ptr<core::HandshakeParticipant>> inflight;
  for (std::size_t i = 0; i < m; ++i) {
    inflight.push_back(party(i, m, fleet.syncs[i].group_key(),
                             fleet.syncs[i].keyring(), "pre-rollover"));
  }

  // k(t) rolls over while the handshake is "on the wire".
  const auto rekey = fleet.engine->refresh();
  for (auto& sync : fleet.syncs) {
    ASSERT_EQ(sync.apply(rekey), ApplyResult::kApplied);
  }

  const auto before = run(inflight);
  for (const auto& o : before) {
    EXPECT_TRUE(o.full_success);
    EXPECT_EQ(o.epoch, pinned);
  }

  std::vector<std::unique_ptr<core::HandshakeParticipant>> fresh;
  for (std::size_t i = 0; i < m; ++i) {
    fresh.push_back(party(i, m, fleet.syncs[i].group_key(),
                          fleet.syncs[i].keyring(), "post-rollover"));
  }
  const auto after = run(fresh);
  for (const auto& o : after) {
    EXPECT_TRUE(o.full_success);
    EXPECT_EQ(o.epoch, pinned + 1);
  }
  EXPECT_NE(before[0].session_key, after[0].session_key);
}

// Seeded adversary sweep. Every run mixes random epoch skews and (half
// the runs) an outsider holding a random key while *claiming* the
// current epoch. Invariants, checked over every run:
//   1. zero false accepts: a confirmed slot implies identical pinned
//      epochs and a genuine member;
//   2. same-epoch members with company always complete together;
//   3. kStaleEpoch appears exactly on newer-side slots within grace —
//      and never for the outsider (the claim is not spoofable);
//   4. transcript entries all have identical shape (silent failures).
TEST(AuthorityEpoch, SeededAdversarySweepHasZeroFalseAccepts) {
  const std::size_t m = 4;
  crypto::HmacDrbg sweep(to_bytes("authority-epoch-sweep"));
  for (std::uint64_t round = 0; round < 10; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t churn = 3;
    std::vector<std::size_t> skews(m);
    for (auto& s : skews) s = sweep.below_u64(churn + 1);
    const bool with_outsider = round % 2 == 0;
    const std::size_t outsider = with_outsider ? sweep.below_u64(m) : m;
    if (with_outsider) skews[outsider] = 0;

    auto fleet = epoched_members(m, churn, skews, /*seed=*/9000 + round);
    std::vector<std::unique_ptr<core::HandshakeParticipant>> parts;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == outsider) {
        core::EpochKeyring lying;
        lying.epoch = fleet.epoch();
        parts.push_back(party(i, m, sweep.bytes(32), lying,
                              "sweep-outsider-" + std::to_string(round)));
      } else {
        parts.push_back(party(i, m, fleet.syncs[i].group_key(),
                              fleet.syncs[i].keyring(),
                              "sweep-" + std::to_string(round)));
      }
    }
    const auto outcomes = run(parts);

    std::set<std::size_t> epochs_with_company;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        if (i == j || i == outsider) continue;
        if (j != outsider && skews[i] == skews[j]) {
          epochs_with_company.insert(skews[i]);
        }
      }
    }

    for (std::size_t i = 0; i < m; ++i) {
      SCOPED_TRACE("position " + std::to_string(i));
      ASSERT_TRUE(outcomes[i].completed);
      for (std::size_t j = 0; j < m; ++j) {
        if (i == j) continue;
        SCOPED_TRACE("slot " + std::to_string(j));
        const bool same_members = i != outsider && j != outsider;
        const bool should_confirm = same_members && skews[i] == skews[j] &&
                                    epochs_with_company.count(skews[i]) > 0;
        EXPECT_EQ(outcomes[i].partner[j], should_confirm);
        if (should_confirm) continue;
        if (i == outsider) continue;  // outsider's own view: all failed
        const bool peer_is_member_behind =
            same_members && skews[j] > skews[i];
        const std::size_t d = peer_is_member_behind ? skews[j] - skews[i] : 0;
        if (peer_is_member_behind && d <= kGrace) {
          EXPECT_EQ(outcomes[i].reason[j], FailureReason::kStaleEpoch);
        } else if (outcomes[i].reason[j] != FailureReason::kNoClique) {
          // Outsiders, newer peers and beyond-grace skews are all plain
          // bad tags; a lonely same-epoch peer is kNoClique.
          EXPECT_EQ(outcomes[i].reason[j], FailureReason::kBadTag);
        }
      }
      // Wire shape: every Phase-III entry looks the same, confirmed,
      // stale-typed or failed — failures stay silent on the wire.
      ASSERT_EQ(outcomes[i].transcript.entries.size(), m);
      for (std::size_t j = 1; j < m; ++j) {
        EXPECT_EQ(outcomes[i].transcript.entries[j].theta.size(),
                  outcomes[i].transcript.entries[0].theta.size());
        EXPECT_EQ(outcomes[i].transcript.entries[j].delta.size(),
                  outcomes[i].transcript.entries[0].delta.size());
      }
    }
  }
}

}  // namespace
}  // namespace shs::authority
